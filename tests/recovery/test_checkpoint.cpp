#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/recovery/checkpoint.hpp"
#include "annsim/recovery/health.hpp"
#include "annsim/segment/segmented_index.hpp"

namespace annsim::recovery {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> some_bytes(std::size_t n, std::uint8_t salt) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::byte(std::uint8_t(i * 31 + salt));
  }
  return out;
}

/// Expect `fn` to throw annsim::Error whose message contains `needle`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

class Checkpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("annsim_ckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Path of one payload/manifest file of a committed partition.
  [[nodiscard]] fs::path file_of(std::uint32_t pid, const char* name) const {
    return fs::path(dir_) / ("partition_" + std::to_string(pid)) / name;
  }

  std::string dir_;
};

TEST_F(Checkpoint, RoundTripPreservesBytesAndMeta) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 3;
  meta.dim = 16;
  meta.count = 97;
  meta.index_kind = 1;
  const auto data = some_bytes(1024, 7);
  const auto index = some_bytes(333, 9);
  store.save(meta, data, index);

  EXPECT_TRUE(store.has(3));
  EXPECT_FALSE(store.has(4));
  auto loaded = store.load(3);
  EXPECT_EQ(loaded.meta.partition, 3u);
  EXPECT_EQ(loaded.meta.dim, 16u);
  EXPECT_EQ(loaded.meta.count, 97u);
  EXPECT_EQ(loaded.meta.index_kind, 1u);
  EXPECT_EQ(loaded.data_bytes, data);
  EXPECT_EQ(loaded.index_bytes, index);
}

TEST_F(Checkpoint, PartitionsListsCommittedSnapshotsAscending) {
  CheckpointStore store(dir_);
  for (std::uint32_t pid : {5u, 0u, 12u}) {
    CheckpointMeta meta;
    meta.partition = pid;
    store.save(meta, some_bytes(8, std::uint8_t(pid)), some_bytes(4, 1));
  }
  EXPECT_EQ(store.partitions(), (std::vector<std::uint32_t>{0, 5, 12}));
}

TEST_F(Checkpoint, SaveReplacesAtomically) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 1;
  store.save(meta, some_bytes(64, 1), some_bytes(64, 2));
  // Overwrite with different payloads: the old snapshot is fully replaced
  // and no staging directory is left behind.
  const auto data2 = some_bytes(128, 3);
  const auto index2 = some_bytes(32, 4);
  store.save(meta, data2, index2);

  auto loaded = store.load(1);
  EXPECT_EQ(loaded.data_bytes, data2);
  EXPECT_EQ(loaded.index_bytes, index2);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().rfind(".", 0), std::string::npos)
        << "staging left behind: " << entry.path();
  }
}

TEST_F(Checkpoint, MissingManifestFailsWithSpecificError) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 2;
  store.save(meta, some_bytes(16, 1), some_bytes(16, 2));
  fs::remove(file_of(2, "manifest.bin"));
  EXPECT_FALSE(store.has(2));
  expect_error_containing([&] { (void)store.load(2); },
                          "checkpoint manifest missing for partition 2");
}

TEST_F(Checkpoint, TruncatedFileFailsWithSpecificError) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 4;
  store.save(meta, some_bytes(100, 1), some_bytes(50, 2));
  fs::resize_file(file_of(4, "data.bin"), 60);
  expect_error_containing([&] { (void)store.load(4); },
                          "checkpoint file data.bin truncated for partition 4");
}

TEST_F(Checkpoint, FlippedByteFailsChecksum) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 6;
  store.save(meta, some_bytes(100, 1), some_bytes(50, 2));
  {
    // Flip one bit in the middle of index.bin; the size stays right, so only
    // the checksum can catch it.
    std::fstream f(file_of(6, "index.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(25);
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x40);
    f.seekp(25);
    f.write(&c, 1);
  }
  expect_error_containing(
      [&] { (void)store.load(6); },
      "checkpoint checksum mismatch in index.bin for partition 6");
}

TEST_F(Checkpoint, BadMagicRejected) {
  CheckpointStore store(dir_);
  CheckpointMeta meta;
  meta.partition = 7;
  store.save(meta, some_bytes(10, 1), some_bytes(10, 2));
  {
    std::fstream f(file_of(7, "manifest.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    const char junk[4] = {'J', 'U', 'N', 'K'};
    f.write(junk, 4);
  }
  expect_error_containing([&] { (void)store.load(7); },
                          "bad checkpoint manifest magic");
}

TEST_F(Checkpoint, ChecksumIsStable) {
  // FNV-1a with the standard offset/prime: pin a known vector so a silent
  // algorithm change cannot invalidate old checkpoints undetected.
  const std::string s = "annsim";
  std::vector<std::byte> b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) b[i] = std::byte(s[i]);
  EXPECT_EQ(checksum64({}), 0xcbf29ce484222325ULL);
  EXPECT_NE(checksum64(b), checksum64({}));
  EXPECT_EQ(checksum64(b), checksum64(b));
}

// ---- segmented (incremental) snapshots ----

segment::SegmentedParams segmented_params() {
  segment::SegmentedParams p;
  p.hnsw.M = 8;
  p.hnsw.ef_construction = 48;
  p.delta_capacity = 16;
  return p;
}

CheckpointMeta segmented_meta(const segment::SegmentedIndex& idx,
                              std::uint32_t pid) {
  CheckpointMeta meta;
  meta.partition = pid;
  meta.dim = idx.dim();
  meta.count = idx.size();
  meta.index_kind = 3;
  return meta;
}

/// save_segmented() from a live index's snapshot_parts().
CheckpointStore::SaveReport save_parts(const CheckpointStore& store,
                                       const segment::SegmentedIndex& idx,
                                       std::uint32_t pid) {
  const auto parts = idx.snapshot_parts();
  return store.save_segmented(segmented_meta(idx, pid), parts.header,
                              parts.segments, parts.delta);
}

TEST_F(Checkpoint, SegmentedSaveRoundTripsTheExactImage) {
  auto w = data::make_sift_like(200, 4, 61);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()),
                              segmented_params());
  idx.insert(w.queries.row_span(0), GlobalId(9000));
  ASSERT_TRUE(idx.erase(GlobalId(3)));

  CheckpointStore store(dir_);
  save_parts(store, idx, 9);

  ASSERT_TRUE(store.has(9));
  const auto loaded = store.load(9);
  EXPECT_EQ(loaded.meta.partition, 9u);
  EXPECT_EQ(loaded.meta.dim, idx.dim());
  EXPECT_EQ(loaded.meta.count, idx.size());
  // Segmented snapshots carry their vectors inside the index image.
  EXPECT_TRUE(loaded.data_bytes.empty());
  EXPECT_EQ(loaded.index_bytes, idx.to_bytes());
  const auto clone = segment::SegmentedIndex::from_bytes(loaded.index_bytes);
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(clone->contains(GlobalId(9000)));
  EXPECT_FALSE(clone->contains(GlobalId(3)));
}

TEST_F(Checkpoint, SegmentedResaveSkipsDurableSegments) {
  auto w = data::make_sift_like(150, 4, 62);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()),
                              segmented_params());
  CheckpointStore store(dir_);

  const auto first = save_parts(store, idx, 0);
  EXPECT_EQ(first.segments_written, 1u);
  EXPECT_EQ(first.segments_skipped, 0u);

  // Delta-only mutation: the frozen segment is already durable.
  ASSERT_TRUE(idx.erase(GlobalId(7)));
  const auto second = save_parts(store, idx, 0);
  EXPECT_EQ(second.segments_written, 0u);
  EXPECT_EQ(second.segments_skipped, 1u);

  // A minor compaction freezes the delta into one NEW segment: exactly that
  // one is written, the old one is skipped.
  idx.insert(w.queries.row_span(1), GlobalId(9100));
  ASSERT_TRUE(idx.compact());
  const auto third = save_parts(store, idx, 0);
  EXPECT_EQ(third.segments_written, 1u);
  EXPECT_EQ(third.segments_skipped, 1u);
}

TEST_F(Checkpoint, SegmentedDeltaGenerationsAreGarbageCollected) {
  auto w = data::make_sift_like(100, 4, 63);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()),
                              segmented_params());
  CheckpointStore store(dir_);
  for (std::size_t round = 0; round < 3; ++round) {
    idx.insert(w.queries.row_span(round % 4), GlobalId(9200 + round));
    save_parts(store, idx, 2);
  }
  // Generations 0 and 1 were superseded and collected; only the committed
  // delta_2.bin remains next to the manifest.
  std::size_t deltas = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "partition_2")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("delta_", 0) == 0) {
      ++deltas;
      EXPECT_EQ(name, "delta_2.bin");
    }
  }
  EXPECT_EQ(deltas, 1u);
  EXPECT_EQ(store.load(2).index_bytes, idx.to_bytes());
}

TEST_F(Checkpoint, SegmentedGcDropsSegmentsMergedAway) {
  auto w = data::make_sift_like(100, 4, 64);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()),
                              segmented_params());
  idx.insert(w.queries.row_span(0), GlobalId(9300));
  ASSERT_TRUE(idx.compact());  // minor: second frozen segment
  CheckpointStore store(dir_);
  save_parts(store, idx, 5);

  // Tombstone pressure forces a major merge: both old segments are replaced
  // by one new one, and the next save's GC drops their files.
  for (GlobalId id = 0; id < 30; ++id) {
    ASSERT_TRUE(idx.erase(id));
  }
  ASSERT_TRUE(idx.compact());
  ASSERT_EQ(idx.stats().n_segments, 1u);
  save_parts(store, idx, 5);

  std::size_t seg_files = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "partition_5")) {
    if (entry.path().filename().string().rfind("seg_", 0) == 0) ++seg_files;
  }
  EXPECT_EQ(seg_files, 1u);
  EXPECT_EQ(store.load(5).index_bytes, idx.to_bytes());
}

TEST_F(Checkpoint, SegmentedCorruptionIsDetected) {
  auto w = data::make_sift_like(100, 4, 65);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()),
                              segmented_params());
  CheckpointStore store(dir_);
  save_parts(store, idx, 8);

  // Locate the one segment file; flip a byte in its middle.
  fs::path seg_path;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "partition_8")) {
    if (entry.path().filename().string().rfind("seg_", 0) == 0) {
      seg_path = entry.path();
    }
  }
  ASSERT_FALSE(seg_path.empty());
  {
    std::fstream f(seg_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x08);
    f.seekp(64);
    f.write(&c, 1);
  }
  expect_error_containing(
      [&] { (void)store.load(8); },
      "checkpoint checksum mismatch in " + seg_path.filename().string());

  // Flip the byte back (re-saves skip existing segment files, so a corrupted
  // segment stays corrupted — integrity is load's job), then truncate the
  // delta: caught by the size check before the checksum even runs.
  {
    std::fstream f(seg_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    char c = 0;
    f.read(&c, 1);
    c = char(c ^ 0x08);
    f.seekp(64);
    f.write(&c, 1);
  }
  ASSERT_NO_THROW((void)store.load(8));
  idx.insert(w.queries.row_span(0), GlobalId(9400));  // non-empty delta
  save_parts(store, idx, 8);
  const auto loaded = store.load(8);
  fs::path delta_path;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "partition_8")) {
    if (entry.path().filename().string().rfind("delta_", 0) == 0) {
      delta_path = entry.path();
    }
  }
  ASSERT_FALSE(delta_path.empty());
  fs::resize_file(delta_path, fs::file_size(delta_path) / 2);
  expect_error_containing(
      [&] { (void)store.load(8); },
      "checkpoint file " + delta_path.filename().string() + " truncated");
}

TEST_F(Checkpoint, FormatsReplaceEachOtherCleanly) {
  auto w = data::make_sift_like(100, 4, 66);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()),
                              segmented_params());
  CheckpointStore store(dir_);

  // Monolithic save first, then segmented of the same partition: the v1
  // payload files must be garbage-collected at the segmented commit.
  CheckpointMeta meta = segmented_meta(idx, 1);
  store.save(meta, some_bytes(64, 1), some_bytes(64, 2));
  EXPECT_TRUE(fs::exists(file_of(1, "data.bin")));
  save_parts(store, idx, 1);
  EXPECT_FALSE(fs::exists(file_of(1, "data.bin")));
  EXPECT_FALSE(fs::exists(file_of(1, "index.bin")));
  EXPECT_EQ(store.load(1).index_bytes, idx.to_bytes());

  // And back: a monolithic save fully replaces the segmented layout.
  const auto data = some_bytes(48, 3);
  const auto index = some_bytes(24, 4);
  store.save(meta, data, index);
  const auto loaded = store.load(1);
  EXPECT_EQ(loaded.data_bytes, data);
  EXPECT_EQ(loaded.index_bytes, index);
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "partition_1")) {
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name == "manifest.bin" || name == "data.bin" ||
                name == "index.bin")
        << "stale segmented file survived: " << name;
  }
}

TEST_F(Checkpoint, StartupSweepsStaleStagingDebris) {
  // A crash mid-commit can leave a hidden staging directory (v1 saves) or a
  // hidden .tmp sibling (segmented saves) behind. Opening the store sweeps
  // both, and never touches committed snapshots.
  {
    CheckpointStore store(dir_);
    CheckpointMeta meta;
    meta.partition = 3;
    store.save(meta, some_bytes(32, 1), some_bytes(16, 2));
  }
  const fs::path staging = fs::path(dir_) / ".partition_9.staging";
  fs::create_directories(staging);
  {
    std::ofstream junk(staging / "data.bin", std::ios::binary);
    junk << "half-written";
  }
  const fs::path tmp_sibling =
      fs::path(dir_) / "partition_3" / ".manifest.bin.tmp";
  {
    std::ofstream junk(tmp_sibling, std::ios::binary);
    junk << "torn";
  }

  CheckpointStore reopened(dir_);
  EXPECT_FALSE(fs::exists(staging));
  EXPECT_FALSE(fs::exists(tmp_sibling));
  EXPECT_TRUE(reopened.has(3));
  EXPECT_EQ(reopened.load(3).data_bytes, some_bytes(32, 1));
}

TEST_F(Checkpoint, SegmentedWatermarkRoundTrips) {
  auto w = data::make_sift_like(120, 4, 67);
  segment::SegmentedIndex idx(w.base.slice(0, w.base.size()),
                              segmented_params());
  CheckpointStore store(dir_);

  // Default watermark is 0 (no WAL): pre-WAL snapshots stay loadable.
  save_parts(store, idx, 4);
  EXPECT_EQ(store.load(4).wal_watermark, 0u);

  // A re-save with a watermark commits it in the manifest; heal replays the
  // worker's log strictly past this LSN after restoring the snapshot.
  const auto parts = idx.snapshot_parts();
  store.save_segmented(segmented_meta(idx, 4), parts.header, parts.segments,
                       parts.delta, /*wal_watermark=*/12345);
  EXPECT_EQ(store.load(4).wal_watermark, 12345u);
}

TEST_F(Checkpoint, HealReportRendering) {
  HealReport r;
  r.workers_revived = 1;
  r.replicas_restored_from_checkpoint = 2;
  r.replicas_restored_from_peer = 1;
  r.wal_replayed_records = 5;
  r.wal_truncated_tail_bytes = 545;
  r.seconds = 0.25;
  EXPECT_EQ(r.replicas_restored(), 3u);
  EXPECT_TRUE(r.fully_healed());
  const auto s = to_string(r);
  EXPECT_NE(s.find("1 workers revived"), std::string::npos) << s;
  EXPECT_NE(s.find("3 replicas restored"), std::string::npos) << s;
  EXPECT_NE(s.find("5 wal records replayed"), std::string::npos) << s;
  EXPECT_NE(s.find("545 wal tail bytes truncated"), std::string::npos) << s;
  r.replicas_unrecoverable = 2;
  EXPECT_FALSE(r.fully_healed());
}

}  // namespace
}  // namespace annsim::recovery
