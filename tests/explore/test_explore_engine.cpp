/// Engine scenarios under the schedule controller: the durability /
/// consistency oracle battery must hold on every schedule the explorer can
/// reach. Three layers:
///  * an exhaustive DFS gate on the 2-partition/2-replica write scenario
///    (faults disarmed so the space stays enumerable) — every schedule clean;
///  * seeded random + PCT sweeps across the op mixes with the fault injector
///    armed (timeouts become choice points; the heal mix kills a worker);
///  * replay: a recorded scenario trace re-executes to the same digest.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <unistd.h>
#include <set>
#include <string>

#include "annsim/explore/explore.hpp"
#include "annsim/explore/scenario.hpp"

namespace annsim::explore {
namespace {

namespace fs = std::filesystem;

std::string scratch_for(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("annsim_explore_") + tag + "_" +
           std::to_string(::getpid())))
      .string();
}

ScenarioConfig small_config(Mix mix, const char* tag) {
  ScenarioConfig cfg;
  cfg.workers = 2;
  cfg.replication = 2;
  cfg.mix = mix;
  cfg.base_rows = 32;
  cfg.write_rows = 2;
  cfg.queries = 2;
  cfg.k = 3;
  cfg.scratch_dir = scratch_for(tag);
  return cfg;
}

std::string describe(const ScenarioConfig& cfg, char strategy,
                     std::uint64_t seed, const RunOutcome& out) {
  return std::string("mix=") + mix_name(cfg.mix) + " token=" +
         encode_replay_token(strategy, seed, 0, out.trace) + ": " + out.error;
}

TEST(ExploreEngine, ExhaustiveGateOnTwoByTwoWriteScenario) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  auto cfg = small_config(Mix::kWrite, "dfs_write");
  cfg.write_rows = 1;
  // Faults disarmed: no timeout choice points, so the schedule space is the
  // pure delivery-order space and the DFS can drain it completely.
  cfg.arm_faults = false;
  DfsDriver dfs(/*max_schedules=*/20000);
  std::set<std::uint64_t> digests;
  do {
    const auto res = run_scenario(cfg, ctrl, dfs.strategy());
    ASSERT_TRUE(res.ok()) << describe(cfg, 'd', 0, res.outcome);
    digests.insert(res.outcome.trace.digest);
  } while (dfs.advance());
  EXPECT_FALSE(dfs.truncated())
      << "space larger than the gate cap: " << dfs.schedules_run();
  EXPECT_GE(dfs.schedules_run(), 2u);
  // Every enumerated schedule is a distinct event sequence.
  EXPECT_EQ(digests.size(), dfs.schedules_run());
}

TEST(ExploreEngine, RandomSweepAcrossMixesWithFaultsArmed) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  for (const Mix mix : {Mix::kWrite, Mix::kCompact, Mix::kHeal, Mix::kMixed}) {
    auto cfg = small_config(mix, "sweep");
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const auto res = run_scenario(
          cfg, ctrl, std::make_shared<RandomStrategy>(seed));
      ASSERT_TRUE(res.ok()) << describe(cfg, 'r', seed, res.outcome);
    }
  }
}

TEST(ExploreEngine, PctSweepOnWriteMix) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  auto cfg = small_config(Mix::kWrite, "pct");
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto res = run_scenario(
        cfg, ctrl, std::make_shared<PctStrategy>(seed, /*depth=*/3));
    ASSERT_TRUE(res.ok()) << describe(cfg, 'p', seed, res.outcome);
  }
}

TEST(ExploreEngine, QueryMixMatchesFaultFreeBaseline) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  auto cfg = small_config(Mix::kQuery, "query");
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto res = run_scenario(
        cfg, ctrl, std::make_shared<RandomStrategy>(seed));
    ASSERT_TRUE(res.ok()) << describe(cfg, 'r', seed, res.outcome);
  }
}

TEST(ExploreEngine, ScenarioTraceReplaysToIdenticalDigest) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  auto cfg = small_config(Mix::kWrite, "replay");
  const auto first =
      run_scenario(cfg, ctrl, std::make_shared<RandomStrategy>(5));
  ASSERT_TRUE(first.ok()) << describe(cfg, 'r', 5, first.outcome);
  ASSERT_GE(first.outcome.trace.branch_points, 1u);

  const auto again = run_scenario(
      cfg, ctrl,
      std::make_shared<ForcedStrategy>(first.outcome.trace.choices));
  ASSERT_TRUE(again.ok()) << describe(cfg, 'f', 0, again.outcome);
  EXPECT_EQ(first.outcome.trace.digest, again.outcome.trace.digest);
  EXPECT_EQ(first.outcome.trace.commits, again.outcome.trace.commits);
}

}  // namespace
}  // namespace annsim::explore
