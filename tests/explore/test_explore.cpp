/// Runtime-level schedule exploration: the controller's determinism contract,
/// replay fidelity, timeout choice points, and the DFS driver's sleep-set
/// pruning — all against tiny hand-built rank programs, no engine involved.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/explore/explore.hpp"
#include "annsim/mpi/mpi.hpp"
#include "annsim/mpi/schedule.hpp"

namespace annsim::explore {
namespace {

std::vector<std::byte> byte_of(char c) { return {std::byte(c)}; }

/// Two racing senders into one receiver; returns the arrival order ("ab" or
/// "ba") observed by rank 0 under the given controller.
std::string race_order(const std::shared_ptr<mpi::ScheduleController>& ctrl) {
  std::string order;
  mpi::Runtime rt(3);
  rt.set_schedule(ctrl);
  rt.run([&](mpi::Comm& c) {
    if (c.rank() == 1) {
      c.send(0, 1, byte_of('a'));
    } else if (c.rank() == 2) {
      c.send(0, 2, byte_of('b'));
    } else {
      for (int i = 0; i < 2; ++i) {
        mpi::Message m = c.recv(mpi::kAnySource, mpi::kAnyTag);
        order.push_back(char(m.payload.at(0)));
      }
    }
  });
  return order;
}

TEST(Explore, SameSeedSameScheduleSameDigest) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  std::string order1, order2;
  auto out1 = run_controlled(*ctrl, std::make_shared<RandomStrategy>(7),
                             [&] { order1 = race_order(ctrl); });
  auto out2 = run_controlled(*ctrl, std::make_shared<RandomStrategy>(7),
                             [&] { order2 = race_order(ctrl); });
  ASSERT_TRUE(out1.ok()) << out1.error;
  ASSERT_TRUE(out2.ok()) << out2.error;
  EXPECT_EQ(order1, order2);
  EXPECT_EQ(out1.trace.digest, out2.trace.digest);
  EXPECT_EQ(out1.trace.choices, out2.trace.choices);
  EXPECT_GE(out1.trace.branch_points, 1u);
}

TEST(Explore, SeedsReachBothOrders) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  std::set<std::string> orders;
  for (std::uint64_t seed = 0; seed < 32 && orders.size() < 2; ++seed) {
    std::string order;
    auto out = run_controlled(*ctrl, std::make_shared<RandomStrategy>(seed),
                              [&] { order = race_order(ctrl); });
    ASSERT_TRUE(out.ok()) << out.error;
    orders.insert(order);
  }
  EXPECT_EQ(orders.size(), 2u) << "32 seeds never flipped the race";
}

TEST(Explore, ForcedReplayReproducesDigestByteForByte) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  std::string order1;
  auto out = run_controlled(*ctrl, std::make_shared<RandomStrategy>(3),
                            [&] { order1 = race_order(ctrl); });
  ASSERT_TRUE(out.ok()) << out.error;

  std::string order2;
  auto replay = run_controlled(
      *ctrl, std::make_shared<ForcedStrategy>(out.trace.choices),
      [&] { order2 = race_order(ctrl); });
  ASSERT_TRUE(replay.ok()) << replay.error;
  EXPECT_EQ(order1, order2);
  EXPECT_EQ(out.trace.digest, replay.trace.digest);
}

TEST(Explore, PctStrategyRunsClean) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  std::set<std::string> orders;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    std::string order;
    auto out = run_controlled(*ctrl, std::make_shared<PctStrategy>(seed, 3),
                              [&] { order = race_order(ctrl); });
    ASSERT_TRUE(out.ok()) << out.error;
    ASSERT_FALSE(order.empty());
    orders.insert(order);
  }
  EXPECT_GE(orders.size(), 1u);
}

TEST(Explore, ReplayTokenRoundTrips) {
  ScheduleTrace trace;
  trace.choices = {0, 3, 1, 255};
  trace.digest = 0xdeadbeefcafe1234ULL;
  const std::string token = encode_replay_token('p', 0xabc123, 5, trace);
  const auto decoded = decode_replay_token(token);
  ASSERT_TRUE(decoded.has_value()) << token;
  EXPECT_EQ(decoded->strategy, 'p');
  EXPECT_EQ(decoded->seed, 0xabc123u);
  EXPECT_EQ(decoded->depth, 5);
  EXPECT_EQ(decoded->choices, trace.choices);
  EXPECT_EQ(decoded->digest, trace.digest);

  EXPECT_FALSE(decode_replay_token("").has_value());
  EXPECT_FALSE(decode_replay_token("X2.r.0.0..0").has_value());
  EXPECT_FALSE(decode_replay_token("X1.z.0.0..0").has_value());
  EXPECT_FALSE(decode_replay_token("X1.r.0.0.abc.0").has_value());  // odd hex
}

TEST(Explore, DfsEnumeratesBothOrdersOfADependentRace) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  DfsDriver dfs;
  std::set<std::string> orders;
  std::set<std::uint64_t> digests;
  do {
    std::string order;
    auto out = run_controlled(*ctrl, dfs.strategy(),
                              [&] { order = race_order(ctrl); });
    ASSERT_TRUE(out.ok()) << out.error;
    orders.insert(order);
    digests.insert(out.trace.digest);
  } while (dfs.advance());
  EXPECT_EQ(dfs.schedules_run(), 2u);
  EXPECT_FALSE(dfs.truncated());
  EXPECT_EQ(orders, (std::set<std::string>{"ab", "ba"}));
  EXPECT_EQ(digests.size(), 2u);
}

TEST(Explore, SleepSetsPruneIndependentInterleavings) {
  // Three sender->receiver pairs, pairwise independent (distinct dests):
  // 3! = 6 naive interleavings, 4 after sleep-set pruning.
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  DfsDriver dfs;
  std::size_t runs = 0;
  do {
    auto out = run_controlled(*ctrl, dfs.strategy(), [&] {
      mpi::Runtime rt(6);
      rt.set_schedule(ctrl);
      rt.run([&](mpi::Comm& c) {
        const int r = c.rank();
        if (r >= 3) {
          c.send(r - 3, 1, byte_of('x'));
        } else {
          (void)c.recv(r + 3, 1);
        }
      });
    });
    ASSERT_TRUE(out.ok()) << out.error;
    ++runs;
  } while (dfs.advance());
  EXPECT_EQ(runs, dfs.schedules_run());
  EXPECT_LT(dfs.schedules_run(), 6u);
  EXPECT_EQ(dfs.schedules_run(), 4u);
}

TEST(Explore, TimeoutIsAChoicePointAndBothOutcomesReachable) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  DfsDriver dfs;
  std::set<bool> outcomes;
  do {
    bool got = false;
    auto out = run_controlled(*ctrl, dfs.strategy(), [&] {
      mpi::Runtime rt(2);
      rt.set_schedule(ctrl);
      rt.run([&](mpi::Comm& c) {
        if (c.rank() == 1) {
          c.send(0, 9, byte_of('m'));
        } else {
          // Generous wall-clock deadline: under control the timeout fires
          // as a scheduled event, never by real waiting.
          got = c.recv_for(1, 9, std::chrono::milliseconds(200)).has_value();
        }
      });
    });
    ASSERT_TRUE(out.ok()) << out.error;
    outcomes.insert(got);
  } while (dfs.advance());
  EXPECT_EQ(outcomes, (std::set<bool>{false, true}))
      << "DFS explored " << dfs.schedules_run()
      << " schedules without reaching both the delivery and the timeout";
}

TEST(Explore, StrictReplayThrowsOnDivergentTrace) {
  auto ctrl = std::make_shared<mpi::ScheduleController>();
  // Too few recorded choices for the race's branch point.
  auto out = run_controlled(
      *ctrl, std::make_shared<ForcedStrategy>(std::vector<std::uint8_t>{}),
      [&] { (void)race_order(ctrl); });
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("replay divergence"), std::string::npos)
      << out.error;
}

TEST(Explore, UncontrolledRuntimesStillFreeRun) {
  // No controller attached: the schedule hook must stay out of the way.
  std::string order;
  mpi::Runtime rt(3);
  rt.run([&](mpi::Comm& c) {
    if (c.rank() == 1) {
      c.send(0, 1, byte_of('a'));
    } else if (c.rank() == 2) {
      c.send(0, 2, byte_of('b'));
    } else {
      for (int i = 0; i < 2; ++i) {
        order.push_back(char(c.recv(mpi::kAnySource, mpi::kAnyTag).payload.at(0)));
      }
    }
  });
  EXPECT_EQ(order.size(), 2u);
}

}  // namespace
}  // namespace annsim::explore
