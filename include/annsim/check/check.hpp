#pragma once
/// \file check.hpp
/// \brief annsim::check — vocabulary of the MPI usage-correctness verifier.
///
/// The simulated MPI runtime can be run with an opt-in verifier (MUST/ISP
/// style) that tracks per-rank communication state and reports precise,
/// rank/tag-attributed diagnostics for the bug classes that silently corrupt
/// distributed results instead of crashing:
///
///   * request leaks — posted nonblocking receives destroyed or still pending
///     at finalize without a completing wait/test/take or a cancel,
///   * RMA epoch discipline — one-sided ops outside a lock_shared/unlock
///     epoch, unlock without lock, epochs still open at finalize,
///   * tag hygiene — plain point-to-point traffic on declared control-plane
///     tags, and wildcard (kAnyTag) receives posted where a control-plane
///     message could match (and be swallowed by data-plane code),
///   * deadlock — a cycle in the cross-rank wait-for graph of blocked
///     unbounded receives, with a full per-rank blocked-state dump,
///   * unmatched sends — messages still sitting in a mailbox at finalize,
///     histogrammed by (tag, destination).
///
/// This header is dependency-free on purpose: the runtime (annsim::mpi)
/// includes it to expose `Runtime::configure_check` / `check_report`, and
/// higher layers (engine, serving, CLI) consume `CheckReport` without pulling
/// in runtime internals. The instrumentation itself lives inside
/// `src/mpi/runtime.cpp`, where the mailbox/window state is visible.
///
/// Enabling: set `CheckOptions::enabled`, or export `ANNSIM_MPI_CHECK=1`
/// (the environment can only turn checking ON — an explicit configuration is
/// never silently disabled). With `fatal` (the default) the runtime throws at
/// finalize when the report is non-clean, so an env-checked test suite fails
/// loudly; verification-oriented callers set `fatal = false` and assert on
/// the report instead. Deadlock detection always aborts the blocked ranks
/// regardless of `fatal` — there is no useful way to "continue" a deadlock.

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace annsim::check {

/// The checker's rule set. Stable numbering: reports are asserted on by
/// tests and printed by the CLI.
enum class Rule : int {
  kRequestLeak = 0,     ///< (a) irecv never completed/taken/cancelled
  kRmaOutsideEpoch,     ///< (b) get/put/get_accumulate without lock_shared
  kRmaLockMisuse,       ///< (b) unlock without lock, nested lock_shared
  kRmaEpochLeak,        ///< (b) epoch still open at finalize
  kReservedTagSend,     ///< (c) plain send on a declared control-plane tag
  kWildcardRecv,        ///< (c) kAnyTag recv posted while reserved tags exist
  kDeadlock,            ///< (d) cycle in the blocked-recv wait-for graph
  kUnmatchedSend,       ///< (e) message never received (finalize scan)
};
inline constexpr std::size_t kRuleCount = 8;

/// Short stable identifier ("request-leak", "deadlock", ...).
[[nodiscard]] const char* rule_name(Rule rule) noexcept;
/// One-line human description of what the rule catches.
[[nodiscard]] const char* rule_what(Rule rule) noexcept;

/// One recorded violation, with enough op context to find the offending call
/// site: which rank, which peer (dest for sends, source for receives, target
/// for RMA; -1 when not applicable), which tag (kAnyTag receives report -1),
/// and a free-form detail string ("posted irecv(source=2, tag=7) never
/// completed", a deadlock dump, ...).
struct Occurrence {
  Rule rule = Rule::kRequestLeak;
  int rank = -1;
  int peer = -1;
  std::int32_t tag = -1;
  std::string detail;
};

/// Configuration of one runtime's verifier. Inert by default.
struct CheckOptions {
  /// Master switch. `ANNSIM_MPI_CHECK=1` in the environment force-enables
  /// checking even when this is false (the reverse never happens).
  bool enabled = false;
  /// Throw annsim::Error from Runtime::run's finalize when the report is not
  /// clean. Defaults to true so an env-checked CI suite cannot pass with
  /// silent violations; set false to collect and assert on the report.
  bool fatal = true;
  /// Control-plane tags (>= 0). Plain send/isend on one of these raises
  /// kReservedTagSend (use send_reserved/isend_reserved at legitimate
  /// control-plane call sites), and any kAnyTag wildcard receive raises
  /// kWildcardRecv while this list is non-empty (a control-plane message
  /// could match the wildcard and be swallowed by data-plane code).
  std::vector<std::int32_t> reserved_tags;
  /// Tags exempt from the unmatched-send finalize rule. With failure
  /// detection armed, data-plane traffic (results, done notices, heartbeats)
  /// is by-design abandonable: a worker declared dead keeps sending into a
  /// mailbox nobody drains. Such residue is still counted in
  /// `CheckReport::best_effort_residue` but raises no violation.
  std::vector<std::int32_t> best_effort_tags;
  /// How long an unbounded recv/wait must stay blocked before it is entered
  /// into the wait-for graph and a cycle scan runs. Large enough that
  /// transient blocking (collective skew, slow peers) never qualifies;
  /// a genuine deadlock waits forever, so detection latency is the only
  /// cost of raising it.
  std::chrono::milliseconds deadlock_after{250};
  /// Per-rule cap on recorded occurrences (counts keep incrementing).
  std::size_t max_occurrences = 16;
};

/// Structured diagnostics of one runtime (or, merged, of an engine's whole
/// lifetime of runtimes). Tests assert on `count(rule)`; the CLI prints
/// `to_string(report)`.
struct CheckReport {
  std::array<std::uint64_t, kRuleCount> counts{};
  /// First-N occurrences per rule, in detection order.
  std::vector<Occurrence> occurrences;
  /// (tag, destination global rank) -> messages left unreceived at finalize.
  std::map<std::pair<std::int32_t, int>, std::uint64_t> unmatched_histogram;
  /// Unreceived messages on best-effort tags (not a violation, but visible).
  std::uint64_t best_effort_residue = 0;
  /// Runtimes folded into this report (1 straight from a Runtime).
  std::uint64_t runs = 0;

  [[nodiscard]] std::uint64_t count(Rule rule) const noexcept {
    return counts[std::size_t(rule)];
  }
  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    std::uint64_t t = 0;
    for (const auto c : counts) t += c;
    return t;
  }
  [[nodiscard]] bool clean() const noexcept { return total_violations() == 0; }

  /// First recorded occurrence of `rule`, or nullptr.
  [[nodiscard]] const Occurrence* first(Rule rule) const noexcept;

  /// Fold another runtime's report into this one (counts add, occurrences
  /// append up to the per-rule cap, histograms merge).
  void merge(const CheckReport& other, std::size_t max_occurrences = 16);
};

/// Multi-line summary: per-rule counts, first occurrences, unmatched
/// histogram. Empty-report renders as a one-line "clean" notice.
[[nodiscard]] std::string to_string(const CheckReport& report);

/// Environment probes (cached after first call): ANNSIM_MPI_CHECK=1/true
/// force-enables checking; ANNSIM_MPI_CHECK_FATAL=0 downgrades finalize
/// violations to report-only even for env-enabled runs (1 forces fatal).
[[nodiscard]] bool env_check_enabled() noexcept;
[[nodiscard]] int env_check_fatal() noexcept;  ///< -1 unset, else 0/1

}  // namespace annsim::check
