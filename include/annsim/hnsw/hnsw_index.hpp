#pragma once
/// \file hnsw_index.hpp
/// \brief From-scratch HNSW (Malkov & Yashunin, TPAMI 2018) — the local
/// per-partition index of the paper (§III-A).
///
/// Implements the published algorithm: exponentially-distributed node levels
/// (skip-list style promotion), greedy descent through the upper layers,
/// beam search (`ef`) in the bottom layer, and the "heuristic" neighbor
/// selection (Algorithm 4 of the HNSW paper) that keeps the graph navigable.
/// Insertions are thread-safe (per-node link locks + entry-point lock), as
/// the paper relies on multi-threaded local construction.
///
/// The index has two graph representations:
///  * a mutable linked form (`vector<vector<LocalId>>` per node) used during
///    construction, searchable concurrently with inserts;
///  * a read-optimized frozen form (`FlatGraph`, a contiguous CSR slab) that
///    `build()` / `from_bytes()` switch to automatically. The frozen search
///    path iterates adjacency spans with zero copies and zero locks, batches
///    neighbor distance computations, software-prefetches upcoming vectors,
///    and ranks candidates in squared-L2 space, deferring the `sqrt` to
///    result emission. Results are identical to the mutable form's.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/common/thread_pool.hpp"
#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/hnsw/flat_graph.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::hnsw {

struct HnswParams {
  /// Max out-degree per node on layers > 0 (layer 0 allows 2*M).
  /// Fig 6 of the paper sweeps M over {8, 16, 32, 64}; 16 is the default.
  std::size_t M = 16;
  /// Beam width during construction.
  std::size_t ef_construction = 200;
  /// Default beam width during search (can be overridden per query).
  std::size_t ef_search = 64;
  /// Level-assignment multiplier; 0 means the canonical 1/ln(M).
  double level_mult = 0.0;
  std::uint64_t seed = 1337;
  simd::Metric metric = simd::Metric::kL2;
};

/// Thrown by HnswIndex::insert once the index has been frozen into its
/// read-only flat form. A typed error (rather than a generic check failure)
/// so writable wrappers — notably segment::SegmentedIndex, whose delta must
/// never be frozen while it is still absorbing inserts — can distinguish
/// "index is in the wrong lifecycle state" from genuine precondition bugs.
class FrozenIndexError : public Error {
 public:
  explicit FrozenIndexError(const std::string& what) : Error(what) {}
};

/// Graph statistics for diagnostics and tests.
struct HnswStats {
  std::size_t n_nodes = 0;
  int max_level = -1;
  std::vector<std::size_t> nodes_per_level;
  double avg_degree_level0 = 0.0;
};

class HnswIndex {
 public:
  /// The index references `data` (not owned); it must outlive the index.
  HnswIndex(const data::Dataset* data, HnswParams params);
  ~HnswIndex();

  HnswIndex(HnswIndex&&) noexcept;
  HnswIndex& operator=(HnswIndex&&) noexcept;
  HnswIndex(const HnswIndex&) = delete;
  HnswIndex& operator=(const HnswIndex&) = delete;

  /// Insert every dataset row (multi-threaded when a pool is supplied), then
  /// freeze() into the read-optimized flat graph.
  void build(ThreadPool* pool = nullptr);

  /// Insert one dataset row (thread-safe; rows may arrive in any order but
  /// each row must be inserted exactly once). Throws once the index is
  /// frozen.
  void insert(LocalId node);

  /// Compact the linked adjacency into the immutable FlatGraph and release
  /// the mutable form. Requires quiescence: no concurrent insert() or
  /// search() calls may be in flight. Idempotent; called by build().
  void freeze();

  /// True once the read-optimized frozen representation is active.
  [[nodiscard]] bool is_frozen() const noexcept;

  /// The frozen CSR adjacency (requires is_frozen()). The quantized tier
  /// reuses this exact topology to traverse SQ8 code rows: the graph is
  /// built once on the full-float rows at freeze time, then searched with
  /// the asymmetric uint8 kernels.
  [[nodiscard]] const FlatGraph& flat_graph() const;

  /// k-NN search. `ef` = 0 uses params().ef_search; effective beam width is
  /// max(ef, k). Returned distances follow the DistanceComputer convention;
  /// ids are the dataset's *global* ids, ready for cross-partition merging.
  [[nodiscard]] std::vector<Neighbor> search(const float* query, std::size_t k,
                                             std::size_t ef = 0) const;

  /// Batched k-NN over a query set, optionally multi-threaded (searches are
  /// read-only and safe to run concurrently).
  [[nodiscard]] data::KnnResults search_batch(const data::Dataset& queries,
                                              std::size_t k, std::size_t ef = 0,
                                              ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] const HnswParams& params() const noexcept { return params_; }
  [[nodiscard]] const data::Dataset& dataset() const noexcept { return *data_; }
  [[nodiscard]] HnswStats stats() const;

  /// Serialize the graph (not the vectors) to a file; `load` re-attaches to
  /// the same dataset.
  void save(const std::string& path) const;
  static HnswIndex load(const std::string& path, const data::Dataset* data);

  /// In-memory (de)serialization — used to ship replica indexes between
  /// ranks during partition replication (§IV-C2). `from_bytes` deserializes
  /// straight into the frozen flat form (the linked graph is never
  /// materialized), so replicas come up read-optimized.
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static HnswIndex from_bytes(std::span<const std::byte> bytes,
                              const data::Dataset* data);

  struct Impl;  // opaque; public only so internal free functions can name it

 private:
  HnswIndex(const data::Dataset* data, HnswParams params, std::unique_ptr<Impl> impl);

  const data::Dataset* data_;
  HnswParams params_;
  std::unique_ptr<Impl> impl_;
};

/// Exact linear-scan index with the same search interface; used as the
/// differential-testing oracle and as a drop-in local index (the paper notes
/// "any algorithm can be used for local indexing and searching").
class BruteForceIndex {
 public:
  BruteForceIndex(const data::Dataset* data, simd::Metric metric)
      : data_(data), dist_(metric, data->dim()) {}

  [[nodiscard]] std::vector<Neighbor> search(const float* query,
                                             std::size_t k) const;

  [[nodiscard]] std::size_t size() const noexcept { return data_->size(); }

 private:
  const data::Dataset* data_;
  simd::DistanceComputer dist_;
};

}  // namespace annsim::hnsw
