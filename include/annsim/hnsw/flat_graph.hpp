#pragma once
/// \file flat_graph.hpp
/// \brief Read-optimized frozen HNSW adjacency: one contiguous CSR-style
/// LocalId slab with per-node/per-layer offsets and inline neighbor counts.
///
/// The mutable build-time graph (`vector<vector<LocalId>>` per node) is
/// cache-hostile: every beam expansion chases two pointers and copies a heap
/// vector. After construction the graph never changes, so `HnswIndex::freeze`
/// compacts it into this immutable form. Beam expansion then iterates a
/// `std::span` straight out of the slab — zero copies, zero locks, and the
/// adjacency block of the next candidate can be software-prefetched.
///
/// Slab layout (LocalId = u32 throughout):
///
///   slab_:  [0][c|n0 n1 ... n_{c-1}][c'|...] ...
///            ^   ^-- one block per (node, layer): count, then neighbors
///            +-- sentinel empty block shared by never-inserted nodes
///
///   l0_off_[v]      -> slab index of v's layer-0 block (the hot path:
///                      neighbors0(v) is two dependent loads, no branches)
///   level_[v]       -> v's top layer (-1 = not inserted)
///   upper_start_[v] -> index into upper_off_ of v's layer>=1 offsets
///   upper_off_[...] -> slab indices for layers 1..level(v), contiguous
///
/// Invariants: neighbor order inside each block is exactly the order of the
/// linked form it was frozen from (freezing never reorders), so flat-graph
/// searches are bit-identical to linked-graph searches.

#include <cstdint>
#include <span>
#include <vector>

#include "annsim/common/serialize.hpp"
#include "annsim/common/types.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::hnsw {

class FlatGraph {
 public:
  FlatGraph() = default;

  /// Prepare for `n` nodes added in id order via add_node(); `slab_hint` is
  /// an estimate of total stored LocalIds (counts included).
  void init(std::size_t n, std::size_t slab_hint);

  /// Append node `next_id`'s adjacency (one vector per layer, layer 0 first).
  /// Nodes must be added in increasing id order.
  void add_node(std::span<const std::vector<LocalId>> layers);

  /// Append node `next_id`'s adjacency straight from the ANN1 wire format
  /// (u32 layer count, then per layer a u64-length-prefixed LocalId array) —
  /// deserialization freezes directly without materializing linked lists.
  void add_node(BinaryReader& r);

  void set_entry(LocalId entry_point, int max_level) noexcept {
    entry_point_ = entry_point;
    max_level_ = max_level;
  }

  [[nodiscard]] std::size_t size() const noexcept { return level_.size(); }
  [[nodiscard]] std::size_t n_inserted() const noexcept { return n_inserted_; }
  /// Largest neighbor-list length in the graph (sizes search scratch).
  [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }
  [[nodiscard]] LocalId entry_point() const noexcept { return entry_point_; }
  [[nodiscard]] int max_level() const noexcept { return max_level_; }
  [[nodiscard]] int level(LocalId v) const noexcept { return level_[v]; }

  /// Layer-0 neighbors of `v` — the beam-search hot path.
  [[nodiscard]] std::span<const LocalId> neighbors0(LocalId v) const noexcept {
    const std::uint64_t off = l0_off_[v];
    return {slab_.data() + off + 1, slab_[off]};
  }

  /// Neighbors of `v` at any layer (empty span above v's level).
  [[nodiscard]] std::span<const LocalId> neighbors(LocalId v, int layer) const noexcept {
    if (layer == 0) return neighbors0(v);
    if (layer > level_[v]) return {};
    const std::uint64_t off = upper_off_[upper_start_[v] + std::size_t(layer) - 1];
    return {slab_.data() + off + 1, slab_[off]};
  }

  /// Prefetch v's layer-0 block (count + leading neighbors).
  void prefetch0(LocalId v) const noexcept {
    simd::prefetch_line(slab_.data() + l0_off_[v]);
  }

  /// Serialize all per-node adjacency in the ANN1 wire format (the part of
  /// to_bytes() after the header), matching the mutable form byte-for-byte.
  void write_nodes(BinaryWriter& w) const;

  /// Total heap bytes of the frozen representation (diagnostics).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  /// Begin a block for the next node id; returns that id.
  std::size_t begin_node(std::size_t n_layers);

  std::vector<LocalId> slab_;
  std::vector<std::uint64_t> l0_off_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint64_t> upper_start_;
  std::vector<std::uint64_t> upper_off_;
  std::size_t n_inserted_ = 0;
  std::size_t max_degree_ = 0;
  LocalId entry_point_ = kInvalidLocalId;
  int max_level_ = -1;
};

}  // namespace annsim::hnsw
