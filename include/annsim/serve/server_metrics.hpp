#pragma once
/// \file server_metrics.hpp
/// \brief Telemetry for the online serving plane: latency histogram with
/// tail quantiles (p50/p95/p99/p999), queue-depth and batch-size
/// distributions, throughput, and rejection/expiry counters.
///
/// All recording methods are thread-safe — clients submit concurrently and
/// completions fire from the engine's master thread — and cheap enough to
/// sit on the request path (one mutex, one histogram increment).

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "annsim/common/stats.hpp"

namespace annsim::serve {

/// Immutable snapshot of the server's counters and distributions.
struct MetricsReport {
  std::size_t submitted = 0;      ///< admitted into the queue
  std::size_t completed_ok = 0;   ///< answered within deadline
  std::size_t rejected = 0;       ///< bounced by backpressure (queue full)
  /// Deadline misses, total: expired_in_queue + completed_late. Kept as the
  /// sum so pre-split dashboards and tests keep reading one number.
  std::size_t expired = 0;
  /// Culled while still queued — the deadline (or an overload cull) fired
  /// before any worker touched the request. High is *good* under overload:
  /// it means shedding happened before cycles were burned.
  std::size_t expired_in_queue = 0;
  /// The search ran to completion but finished past the deadline — worker
  /// time spent on an answer the client had already given up on. Overload
  /// control exists to drive this to zero.
  std::size_t completed_late = 0;
  std::size_t failed = 0;         ///< engine error or shutdown drop
  std::size_t degraded = 0;       ///< answered with partial coverage
  std::size_t retries = 0;        ///< degraded re-runs consumed (budget spend)
  std::size_t batches = 0;        ///< engine batch invocations

  // ---- overload control (zeros unless armed; see DESIGN.md §4.11) ----
  /// Admission-time culls: expired on arrival, won't-make-it (EWMA says the
  /// deadline is unreachable), or evicted by a higher-priority arrival.
  std::size_t shed = 0;
  std::size_t breaker_rejections = 0;  ///< fast-failed while the breaker was open
  std::size_t breaker_trips = 0;       ///< closed/half-open -> open transitions
  std::size_t browned_out = 0;   ///< queries dispatched below full effort
  double brownout_pressure = 0.0;   ///< controller pressure snapshot in [0, 1]
  double brownout_min_factor = 1.0; ///< lowest effort factor ever dispatched

  // ---- self-healing (auto_heal; zeros otherwise) ----
  std::size_t heals = 0;             ///< engine heal() passes triggered
  std::size_t workers_revived = 0;   ///< dead workers brought back, lifetime
  std::size_t coverage_restored = 0; ///< heals that restored every replica
  /// WAL records replayed past checkpoint watermarks across all heals
  /// (zeros unless the engine runs with a wal_dir).
  std::size_t wal_replayed_records = 0;
  /// Corrupt WAL tail bytes truncated while recovering revived workers'
  /// logs, across all heals.
  std::size_t wal_truncated_tail_bytes = 0;
  /// Partitions below the configured replication factor after the most
  /// recent batch (snapshot, not cumulative). 0 means full coverage.
  std::size_t under_replicated_partitions = 0;

  double wall_seconds = 0.0;      ///< first admission -> last completion
  double throughput_qps = 0.0;    ///< completed_ok / wall_seconds

  double latency_mean_ms = 0.0;   ///< end-to-end latency of ok completions
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
  double latency_max_ms = 0.0;

  double queue_wait_mean_ms = 0.0;  ///< admission -> batch dispatch

  Summary queue_depth;  ///< depth observed after each admission
  Summary batch_size;   ///< size of each dispatched batch
};

/// Multi-line human-readable rendering (bench / CLI output).
[[nodiscard]] std::string to_string(const MetricsReport& r);

class ServerMetrics {
 public:
  using Clock = std::chrono::steady_clock;

  void on_submit(std::size_t queue_depth_after_admission);
  void on_reject();
  /// Deadline fired while the request was still queued (pre-dispatch cull).
  void on_expire_in_queue();
  /// The search finished after the deadline (late completion).
  void on_complete_late();
  /// Admission-time overload cull (expired on arrival / won't-make-it /
  /// evicted for a higher class).
  void on_shed();
  /// Fast-fail because the circuit breaker was open.
  void on_breaker_reject();
  void on_breaker_trip();
  /// A batch went out with `n` queries below full effort at `factor`.
  void on_brownout(std::size_t n, double factor);
  /// Brownout controller pressure after the latest batch boundary.
  void on_pressure(double pressure);
  void on_fail();
  void on_batch(std::size_t batch_size);
  /// An in-deadline completion; latencies in milliseconds.
  void on_complete_ok(double latency_ms, double queue_wait_ms);
  /// An in-deadline completion with partial coverage (kDegraded). Feeds the
  /// same latency histogram as ok completions — a degraded answer is still
  /// an answer the client waited for.
  void on_complete_degraded(double latency_ms, double queue_wait_ms);
  /// A degraded result withheld and requeued for another attempt.
  void on_retry();
  /// An engine heal() pass ran; `coverage_restored` = it repaired every
  /// missing replica. The WAL counters carry the heal's replay/truncation
  /// tallies (0 when the engine runs without a wal_dir).
  void on_heal(std::size_t workers_revived, bool coverage_restored,
               std::size_t wal_replayed_records = 0,
               std::size_t wal_truncated_tail_bytes = 0);
  /// Post-batch cluster snapshot: partitions below the replication factor.
  void on_health(std::size_t under_replicated);

  [[nodiscard]] MetricsReport report() const;

 private:
  mutable std::mutex mu_;
  // Latency from 1us to 100s at ~8% bucket resolution.
  Histogram latency_ms_{1e-3, 1e5, 1.08};
  RunningStats queue_wait_ms_;
  std::vector<double> queue_depths_;
  std::vector<double> batch_sizes_;
  std::size_t submitted_ = 0, completed_ok_ = 0, rejected_ = 0,
              expired_in_queue_ = 0, completed_late_ = 0, failed_ = 0,
              degraded_ = 0, retries_ = 0, batches_ = 0;
  std::size_t shed_ = 0, breaker_rejections_ = 0, breaker_trips_ = 0,
              browned_out_ = 0;
  double pressure_ = 0.0, min_factor_ = 1.0;
  std::size_t heals_ = 0, workers_revived_ = 0, coverage_restored_ = 0,
              under_replicated_ = 0;
  std::size_t wal_replayed_records_ = 0, wal_truncated_tail_bytes_ = 0;
  bool saw_submit_ = false;
  Clock::time_point first_submit_{};
  Clock::time_point last_complete_{};
};

}  // namespace annsim::serve
