#pragma once
/// \file load_gen.hpp
/// \brief Load generators for the serving plane: open-loop Poisson arrivals
/// at a configured QPS (the standard tail-latency methodology — arrivals do
/// not slow down when the server does) and a closed-loop mode (N clients,
/// each submit-then-wait) for saturation throughput. Traffic can be split
/// across priority classes, and an overload ramp drives the server through a
/// sequence of rate multipliers to map goodput past the saturation knee.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "annsim/data/dataset.hpp"
#include "annsim/serve/query_server.hpp"

namespace annsim::serve {

struct LoadGenConfig {
  bool open_loop = true;       ///< Poisson arrivals; false = closed loop
  double qps = 2000.0;         ///< open-loop mean arrival rate
  std::size_t n_requests = 2000;
  std::size_t n_clients = 4;   ///< closed-loop client thread count
  std::size_t k = 10;
  double deadline_ms = 0.0;    ///< per-request deadline; <= 0 disables
  std::uint64_t seed = 1;      ///< Poisson inter-arrival stream seed
  /// Traffic fraction per priority class {interactive, batch, best-effort}.
  /// Entries must be >= 0 and sum to > 0 (normalized internally). Default:
  /// everything interactive, the pre-overload-control behaviour.
  std::array<double, kPriorityClasses> class_mix = {1.0, 0.0, 0.0};
  /// Optional per-response hook, invoked from the tallying thread with the
  /// index of the query (into the pool, pre-modulo) and its response. Lets a
  /// bench compute recall against ground truth for browned-out answers.
  std::function<void(std::size_t, const QueryResponse&)> on_response;
};

/// Client-side outcome counts and latency sample for one priority class.
struct ClassTally {
  std::size_t sent = 0;
  std::size_t ok = 0;        ///< kOk + kDegraded: an answer, in deadline
  std::size_t rejected = 0;
  std::size_t expired = 0;   ///< kDeadlineExpired (late answer)
  std::size_t shed = 0;      ///< culled by overload control
  std::size_t failed = 0;
  std::vector<double> latencies_ms;  ///< total_ms of each served (ok) response
  double p999_ms = 0.0;              ///< client-side tail of served responses
  /// ok / sent — the deadline-hit rate when cfg.deadline_ms > 0 (sheds and
  /// rejections count as misses: the client did not get an answer in time).
  double hit_rate = 0.0;
};

struct LoadGenReport {
  double wall_seconds = 0.0;       ///< submission start -> last response
  double offered_qps = 0.0;        ///< n_requests / wall (open loop: ~cfg.qps)
  std::size_t ok = 0, rejected = 0, expired = 0, shed = 0, failed = 0;
  std::array<ClassTally, kPriorityClasses> by_class;
  double min_effort_factor = 1.0;  ///< lowest brownout effort seen client-side
  MetricsReport metrics;           ///< server-side telemetry snapshot
};

/// Drive `server` with requests drawn cyclically from `queries`. Blocks
/// until every response has arrived.
[[nodiscard]] LoadGenReport run_load(QueryServer& server,
                                     const data::Dataset& queries,
                                     const LoadGenConfig& cfg);

/// One stage of an overload ramp: `base` with qps scaled by `multiplier`.
struct RampStage {
  double multiplier = 1.0;   ///< offered load as a multiple of base.qps
  LoadGenReport report;
};

/// Run `base` (open-loop) once per multiplier, back to back against the same
/// server, e.g. {0.5, 1.0, 1.5, 2.0} sweeps from comfortable load to 2x
/// saturation. Each stage's report carries its own client-side tallies; the
/// embedded server metrics snapshot is cumulative across stages. Stage seeds
/// are derived from base.seed so arrival streams differ per stage but stay
/// reproducible.
[[nodiscard]] std::vector<RampStage> run_ramp(QueryServer& server,
                                              const data::Dataset& queries,
                                              const LoadGenConfig& base,
                                              std::span<const double> multipliers);

}  // namespace annsim::serve
