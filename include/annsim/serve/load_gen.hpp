#pragma once
/// \file load_gen.hpp
/// \brief Load generators for the serving plane: open-loop Poisson arrivals
/// at a configured QPS (the standard tail-latency methodology — arrivals do
/// not slow down when the server does) and a closed-loop mode (N clients,
/// each submit-then-wait) for saturation throughput.

#include <cstddef>
#include <cstdint>

#include "annsim/data/dataset.hpp"
#include "annsim/serve/query_server.hpp"

namespace annsim::serve {

struct LoadGenConfig {
  bool open_loop = true;       ///< Poisson arrivals; false = closed loop
  double qps = 2000.0;         ///< open-loop mean arrival rate
  std::size_t n_requests = 2000;
  std::size_t n_clients = 4;   ///< closed-loop client thread count
  std::size_t k = 10;
  double deadline_ms = 0.0;    ///< per-request deadline; <= 0 disables
  std::uint64_t seed = 1;      ///< Poisson inter-arrival stream seed
};

struct LoadGenReport {
  double wall_seconds = 0.0;       ///< submission start -> last response
  double offered_qps = 0.0;        ///< n_requests / wall (open loop: ~cfg.qps)
  std::size_t ok = 0, rejected = 0, expired = 0, failed = 0;
  MetricsReport metrics;           ///< server-side telemetry snapshot
};

/// Drive `server` with requests drawn cyclically from `queries`. Blocks
/// until every response has arrived.
[[nodiscard]] LoadGenReport run_load(QueryServer& server,
                                     const data::Dataset& queries,
                                     const LoadGenConfig& cfg);

}  // namespace annsim::serve
