#pragma once
/// \file query_server.hpp
/// \brief Online query-serving front end for the distributed ANN engine.
///
/// The paper's engine answers one pre-materialized offline batch
/// (Algorithms 3-5). Production traffic instead arrives as individual
/// requests over time, so web-scale ANN deployments put a serving tier in
/// front of the index (LANNS batches online lookups the same way). The
/// QueryServer is that tier:
///
///     clients ──submit()──► bounded admission queue ──► micro-batcher
///         ◄──future◄── per-request completion ◄── DistributedAnnEngine
///
/// A dynamic micro-batching scheduler groups pending requests and flushes a
/// batch when it reaches `max_batch` requests or the oldest pending request
/// has waited `max_delay_ms` — whichever comes first — trading per-request
/// latency against the batch efficiency the engine's master-worker dispatch
/// was designed for. Each request carries an optional deadline; expired
/// requests complete with a timeout status instead of blocking their
/// callers. Admission is bounded: when the queue is full the server either
/// rejects (default, load-shedding) or blocks the submitter (backpressure).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "annsim/core/engine.hpp"
#include "annsim/serve/server_metrics.hpp"

namespace annsim::serve {

enum class QueryStatus : std::uint8_t {
  kOk = 0,        ///< answered within deadline
  kRejected,      ///< bounced at admission (queue full, reject policy)
  kDeadlineExpired,  ///< deadline passed; neighbors may be present if the
                     ///< search finished late (partial service)
  kShutdown,      ///< server stopped before the request could be served
  kError,         ///< engine failure while serving the batch
  kDegraded,      ///< answered, but workers failed mid-batch and the retry
                  ///< budget ran out: partial coverage (see partitions_*)
};

[[nodiscard]] const char* to_string(QueryStatus s) noexcept;

struct QueryResponse {
  QueryStatus status = QueryStatus::kShutdown;
  std::vector<Neighbor> neighbors;  ///< ascending by distance, <= requested k
  double queue_ms = 0.0;   ///< admission -> batch dispatch
  double total_ms = 0.0;   ///< admission -> completion (end-to-end latency)
  std::size_t batch_size = 0;  ///< size of the micro-batch this request rode in
  /// Coverage the engine reported for this query (searched < planned marks a
  /// degraded answer; both 0 when the engine runs without failure detection).
  std::uint32_t partitions_searched = 0;
  std::uint32_t partitions_planned = 0;
};

/// What to do with a submit() when the admission queue is full.
enum class OverflowPolicy : std::uint8_t {
  kReject,  ///< complete immediately with kRejected (load shedding)
  kBlock,   ///< block the submitting thread until space frees (backpressure)
};

struct ServerConfig {
  std::size_t max_batch = 32;      ///< flush when this many requests pend
  double max_delay_ms = 2.0;       ///< ... or when the oldest waited this long
  std::size_t queue_capacity = 1024;  ///< bounded admission queue
  OverflowPolicy overflow = OverflowPolicy::kReject;
  std::size_t ef = 0;              ///< engine ef_search override (0 = default)
  /// Degraded-answer retry budget: a query the engine answers with partial
  /// coverage is requeued up to this many times (0 = surface kDegraded
  /// immediately) as long as a retry can still beat the request's deadline.
  std::size_t max_retries = 0;
  /// Wait this long before a degraded retry re-enters a batch, giving the
  /// engine's failover a fresh worker set time to absorb the load.
  double retry_backoff_ms = 0.0;
  /// Self-healing: after a batch that leaves workers dead, run the engine's
  /// heal() on the batch boundary (scheduler thread, between searches) so
  /// the next batch dispatches to restored replicas. Degraded answers stop
  /// occurring as soon as a heal restores full coverage.
  bool auto_heal = false;
  /// Live-mutability: when any replica's mutable delta reaches this fill
  /// (checked on each batch boundary), kick off engine compact() on a
  /// background thread so re-freezing overlaps serving instead of stalling
  /// it. 0 (default) disables; requires a segmented engine when set.
  std::size_t compact_at_fill = 0;
};

/// Thread-safe online front end over a built DistributedAnnEngine. The
/// engine is referenced, not owned, and must outlive the server; batches are
/// serialized through one scheduler thread, matching the engine's
/// one-batch-at-a-time master.
class QueryServer {
 public:
  QueryServer(core::DistributedAnnEngine* engine, ServerConfig config);
  ~QueryServer();  ///< graceful stop(): drains pending requests

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Submit one query from any thread. `deadline_ms` <= 0 means no deadline.
  /// The returned future completes exactly once — with results, a timeout,
  /// a rejection, or a shutdown status; it never blocks forever.
  [[nodiscard]] std::future<QueryResponse> submit(std::vector<float> query,
                                                  std::size_t k,
                                                  double deadline_ms = 0.0);

  /// Stop accepting requests, drain everything already admitted, and join
  /// the scheduler. Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] MetricsReport metrics() const { return metrics_.report(); }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::vector<float> query;
    std::size_t k = 0;
    Clock::time_point admitted{};
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<QueryResponse> promise;
    std::size_t retries_used = 0;  ///< degraded re-runs consumed so far
    /// Backoff gate: the scheduler skips this request until the gate opens.
    Clock::time_point not_before = Clock::time_point::min();
  };

  void scheduler_main();
  /// Complete every queued request whose deadline has passed. Caller holds mu_.
  void expire_overdue_locked(Clock::time_point now);
  void run_batch(std::vector<Pending> batch);
  /// Batch-boundary compaction trigger: start a background engine compact()
  /// when the delta fill crosses config_.compact_at_fill and none is running.
  void maybe_compact();

  core::DistributedAnnEngine* engine_;
  ServerConfig config_;
  std::size_t dim_ = 0;
  std::chrono::duration<double, std::milli> max_delay_{};

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< scheduler wakeups
  std::condition_variable cv_space_;  ///< blocked submitters (kBlock policy)
  std::deque<Pending> queue_;
  bool stopping_ = false;

  ServerMetrics metrics_;
  std::thread scheduler_;

  /// Background compaction: at most one in flight; the engine's own locking
  /// lets it overlap the scheduler's search batches (hot-swap views).
  std::thread compactor_;
  std::atomic<bool> compacting_{false};
};

}  // namespace annsim::serve
