#pragma once
/// \file query_server.hpp
/// \brief Online query-serving front end for the distributed ANN engine.
///
/// The paper's engine answers one pre-materialized offline batch
/// (Algorithms 3-5). Production traffic instead arrives as individual
/// requests over time, so web-scale ANN deployments put a serving tier in
/// front of the index (LANNS batches online lookups the same way). The
/// QueryServer is that tier:
///
///     clients ──submit()──► bounded admission queue ──► micro-batcher
///         ◄──future◄── per-request completion ◄── DistributedAnnEngine
///
/// A dynamic micro-batching scheduler groups pending requests and flushes a
/// batch when it reaches `max_batch` requests or the oldest pending request
/// has waited `max_delay_ms` — whichever comes first — trading per-request
/// latency against the batch efficiency the engine's master-worker dispatch
/// was designed for. Each request carries an optional deadline; expired
/// requests complete with a timeout status instead of blocking their
/// callers. Admission is bounded: when the queue is full the server either
/// rejects (default, load-shedding) or blocks the submitter (backpressure).
///
/// Overload control (DESIGN.md §4.11) keeps goodput bounded past capacity:
/// deadline-aware admission (EDF dequeue, expired-on-arrival and
/// won't-make-it culling from a windowed service-time EWMA), brownout search
/// (a load-proportional controller that shrinks per-query effort — HNSW ef
/// and partitions probed — when queue delay crosses a CoDel-style target),
/// priority classes (interactive degrades last), and a circuit breaker that
/// fast-fails admissions while the engine cannot meet deadlines.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "annsim/core/engine.hpp"
#include "annsim/serve/server_metrics.hpp"

namespace annsim::serve {

enum class QueryStatus : std::uint8_t {
  kOk = 0,        ///< answered within deadline
  kRejected,      ///< bounced at admission (queue full, reject policy)
  kDeadlineExpired,  ///< deadline passed; neighbors may be present if the
                     ///< search finished late (partial service)
  kShutdown,      ///< server stopped before the request could be served
  kError,         ///< engine failure while serving the batch
  kDegraded,      ///< answered, but workers failed mid-batch and the retry
                  ///< budget ran out: partial coverage (see partitions_*)
  kShed,          ///< culled by overload control before any worker touched
                  ///< it: expired on arrival, won't-make-it, evicted by a
                  ///< higher class, or fast-failed by an open breaker
};

[[nodiscard]] const char* to_string(QueryStatus s) noexcept;

/// Request priority class. Overload control degrades strictly bottom-up:
/// best-effort sheds and browns out first, batch next, interactive last.
enum class PriorityClass : std::uint8_t {
  kInteractive = 0,  ///< user-facing; degrades last
  kBatch = 1,        ///< offline pipelines that still want answers
  kBestEffort = 2,   ///< opportunistic traffic; first to shed
};

inline constexpr std::size_t kPriorityClasses = 3;

[[nodiscard]] const char* to_string(PriorityClass c) noexcept;

struct QueryResponse {
  QueryStatus status = QueryStatus::kShutdown;
  std::vector<Neighbor> neighbors;  ///< ascending by distance, <= requested k
  double queue_ms = 0.0;   ///< admission -> batch dispatch
  double total_ms = 0.0;   ///< admission -> completion (end-to-end latency)
  std::size_t batch_size = 0;  ///< size of the micro-batch this request rode in
  /// Coverage the engine reported for this query (searched < planned marks a
  /// degraded answer; both 0 when the engine runs without failure detection).
  std::uint32_t partitions_searched = 0;
  std::uint32_t partitions_planned = 0;
  /// Brownout effort this request was served at: 1.0 = full ef / fan-out,
  /// lower = the controller traded recall for latency under pressure.
  double effort_factor = 1.0;
};

/// What to do with a submit() when the admission queue is full.
enum class OverflowPolicy : std::uint8_t {
  kReject,  ///< complete immediately with kRejected (load shedding)
  kBlock,   ///< block the submitting thread until space frees (backpressure)
};

struct ServerConfig {
  std::size_t max_batch = 32;      ///< flush when this many requests pend
  double max_delay_ms = 2.0;       ///< ... or when the oldest waited this long
  std::size_t queue_capacity = 1024;  ///< bounded admission queue
  OverflowPolicy overflow = OverflowPolicy::kReject;
  std::size_t ef = 0;              ///< engine ef_search override (0 = default)
  /// Degraded-answer retry budget: a query the engine answers with partial
  /// coverage is requeued up to this many times (0 = surface kDegraded
  /// immediately) as long as a retry can still beat the request's deadline.
  std::size_t max_retries = 0;
  /// Wait this long before a degraded retry re-enters a batch, giving the
  /// engine's failover a fresh worker set time to absorb the load.
  double retry_backoff_ms = 0.0;
  /// Self-healing: after a batch that leaves workers dead, run the engine's
  /// heal() on the batch boundary (scheduler thread, between searches) so
  /// the next batch dispatches to restored replicas. Degraded answers stop
  /// occurring as soon as a heal restores full coverage.
  bool auto_heal = false;
  /// Live-mutability: when any replica's mutable delta reaches this fill
  /// (checked on each batch boundary), kick off engine compact() on a
  /// background thread so re-freezing overlaps serving instead of stalling
  /// it. 0 (default) disables; requires a segmented engine when set.
  std::size_t compact_at_fill = 0;
  /// Crash-consistent write durability: when non-empty, the server attaches
  /// per-worker write-ahead logs under this directory (engine enable_wal())
  /// before serving, so every acked insert/delete is fsynced and replayable.
  /// Requires a segmented engine. Empty (default) keeps writes in-memory.
  std::string wal_dir;
  /// Group-commit mode for wal_dir: true (default) batches the round's log
  /// frames into one fsync per worker before the ack — the p999-friendly
  /// setting; false fsyncs every appended frame.
  bool wal_group_commit = true;

  // ---- overload control (DESIGN.md §4.11; all off by default) ----
  /// Deadline-aware admission: dequeue earliest-deadline-first (within each
  /// priority class), cull requests that are expired on arrival or that the
  /// service-time EWMA says cannot make their deadline (kShed), evict the
  /// lowest class from a full queue for a higher-class arrival, and flush a
  /// batch early when the tightest queued deadline demands it.
  bool deadline_scheduling = false;
  /// Brownout target for measured queue delay (CoDel-style): when a batch
  /// dispatches with its oldest request having queued longer than this, the
  /// controller raises pressure and shrinks per-query search effort
  /// (bottom-up by class); when delay falls below half the target, pressure
  /// decays and full effort returns. <= 0 disables brownout.
  double brownout_target_ms = 0.0;
  /// Lowest effort factor brownout may dispatch (scales ef and partitions
  /// probed). Must be in (0, 1].
  double brownout_floor = 0.25;
  /// Circuit breaker: trip when the deadline-miss + failure fraction over a
  /// window of `breaker_window` outcomes reaches this ratio. While open, new
  /// admissions fast-fail (kShed) until `breaker_open_ms` elapses; then up
  /// to `breaker_probes` half-open probes test recovery — one probe failure
  /// re-opens, all probes succeeding closes. <= 0 disables the breaker.
  double breaker_threshold = 0.0;
  std::size_t breaker_window = 64;  ///< outcomes per trip evaluation (>= 1)
  double breaker_open_ms = 50.0;    ///< open -> half-open delay (>= 0)
  std::size_t breaker_probes = 8;   ///< half-open probe admissions (>= 1)
};

/// Thread-safe online front end over a built DistributedAnnEngine. The
/// engine is referenced, not owned, and must outlive the server; batches are
/// serialized through one scheduler thread, matching the engine's
/// one-batch-at-a-time master.
class QueryServer {
 public:
  QueryServer(core::DistributedAnnEngine* engine, ServerConfig config);
  ~QueryServer();  ///< graceful stop(): drains pending requests

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Submit one query from any thread. `deadline_ms` <= 0 means no deadline.
  /// The returned future completes exactly once — with results, a timeout,
  /// a rejection, a shed, or a shutdown status; it never blocks forever.
  /// `cls` is the request's priority class: under overload, lower classes
  /// shed and brown out before higher ones.
  [[nodiscard]] std::future<QueryResponse> submit(
      std::vector<float> query, std::size_t k, double deadline_ms = 0.0,
      PriorityClass cls = PriorityClass::kInteractive);

  /// Stop accepting requests, drain everything already admitted, and join
  /// the scheduler. Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] MetricsReport metrics() const { return metrics_.report(); }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::vector<float> query;
    std::size_t k = 0;
    PriorityClass cls = PriorityClass::kInteractive;
    Clock::time_point admitted{};
    Clock::time_point deadline = Clock::time_point::max();
    std::promise<QueryResponse> promise;
    std::size_t retries_used = 0;  ///< degraded re-runs consumed so far
    /// Backoff gate: the scheduler skips this request until the gate opens.
    Clock::time_point not_before = Clock::time_point::min();
    std::uint64_t seq = 0;  ///< admission order, the EDF tie-break
    bool breaker_probe = false;  ///< admitted as a half-open recovery probe
    double effort = 1.0;  ///< brownout factor assigned at batch formation
  };

  /// Per-engine circuit breaker (DESIGN.md §4.11). Own mutex: outcomes are
  /// recorded from the engine's completion hook, which must not take mu_.
  struct Breaker {
    enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };
    std::mutex mu;
    State state = State::kClosed;
    Clock::time_point open_until{};
    std::size_t window_total = 0, window_failures = 0;
    std::size_t probes_issued = 0, probes_done = 0;
  };

  void scheduler_main();
  /// Complete every queued request whose deadline has passed. Caller holds mu_.
  void expire_overdue_locked(Clock::time_point now);
  void run_batch(std::vector<Pending> batch);
  /// Batch-boundary compaction trigger: start a background engine compact()
  /// when the delta fill crosses config_.compact_at_fill and none is running.
  void maybe_compact();
  /// Breaker admission gate. Returns false when the request must fast-fail;
  /// otherwise sets `*probe` when the admission is a half-open probe.
  bool breaker_admit(Clock::time_point now, bool* probe);
  /// Fold one request outcome (deadline made vs missed/failed) into the
  /// breaker window; trips, re-opens, or closes the breaker as warranted.
  void breaker_record(bool success, bool probe);
  /// Brownout effort factor for `cls` at the current pressure. 1.0 = full.
  [[nodiscard]] double effort_factor(PriorityClass cls) const;
  /// Complete `p` as shed (kShed) without touching any worker.
  void shed_request(Pending&& p, Clock::time_point now);

  core::DistributedAnnEngine* engine_;
  ServerConfig config_;
  std::size_t dim_ = 0;
  std::chrono::duration<double, std::milli> max_delay_{};

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< scheduler wakeups
  std::condition_variable cv_space_;  ///< blocked submitters (kBlock policy)
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::uint64_t next_seq_ = 0;  ///< admission counter (under mu_)

  // ---- overload controller state ----
  /// Windowed EWMA of per-query drain cost (batch wall ms / batch size) and
  /// of whole-batch service time; 0 until the first batch lands. Guarded by
  /// mu_ — read at admission, written on the batch boundary.
  double ewma_query_ms_ = 0.0;
  double ewma_batch_ms_ = 0.0;
  /// Brownout pressure in [0, 1]; atomic so the effort computation in
  /// run_batch (after mu_ is dropped) reads it without re-locking.
  std::atomic<double> pressure_{0.0};
  Breaker breaker_;

  ServerMetrics metrics_;
  std::thread scheduler_;

  /// Background compaction: at most one in flight; the engine's own locking
  /// lets it overlap the scheduler's search batches (hot-swap views).
  std::thread compactor_;
  std::atomic<bool> compacting_{false};
};

}  // namespace annsim::serve
