#pragma once
/// \file kd_tree.hpp
/// \brief KD-tree: the exact-search baseline family (PANDA, Patwary et al.
/// IPDPS'16) that Table III compares against.
///
/// Two classes mirror the VP-tree module: `KdTree` is an exact local k-NN
/// index (median split on the widest-spread coordinate, backtracking search),
/// and `PartitionKdTree` is the KD analogue of the partition router — its
/// leaves are data partitions, and exact global search must visit every
/// partition whose half-space cell intersects the query ball, which is the
/// high-dimensional explosion the paper demonstrates.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::kdtree {

struct KdTreeParams {
  std::size_t leaf_size = 16;  ///< switch to linear scan below this size
  simd::Metric metric = simd::Metric::kL2;  ///< kL2 or kL1 only
};

/// Exact k-NN index over a Dataset (referenced, not owned).
class KdTree {
 public:
  KdTree(const data::Dataset* data, KdTreeParams params);

  /// Exact k-NN; `evals_out` counts distance evaluations when non-null.
  [[nodiscard]] std::vector<Neighbor> search(const float* query, std::size_t k,
                                             std::size_t* evals_out = nullptr) const;

  [[nodiscard]] std::size_t size() const noexcept { return data_->size(); }

 private:
  struct Node {
    std::uint32_t axis = 0;
    float split = 0.f;
    std::int32_t left = -1;    ///< -1 on leaves
    std::int32_t right = -1;
    std::uint32_t begin = 0;   ///< leaf row range into rows_
    std::uint32_t end = 0;
  };

  std::int32_t build(std::size_t begin, std::size_t end);
  void search_node(std::int32_t node, const float* query, class KdTopK& topk) const;

  const data::Dataset* data_;
  KdTreeParams params_;
  simd::DistanceComputer dist_;
  std::vector<std::size_t> rows_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

struct PartitionKdTreeParams {
  std::size_t target_partitions = 8;  ///< power of two
  simd::Metric metric = simd::Metric::kL2;
};

/// KD-median partition router (leaves = partitions), the global index of the
/// PANDA-style baseline.
class PartitionKdTree {
 public:
  struct Node {
    std::uint32_t axis = 0;
    float split = 0.f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    PartitionId leaf = kInvalidPartition;
  };

  static PartitionKdTree build(const data::Dataset& data,
                               const PartitionKdTreeParams& params,
                               std::vector<PartitionId>* assignment_out);

  /// All partitions whose cell intersects ball(query, radius): the exact
  /// visit set for exact distributed k-NN.
  [[nodiscard]] std::vector<PartitionId> route_ball(const float* query,
                                                    float radius) const;

  [[nodiscard]] PartitionId route_nearest(const float* query) const;

  [[nodiscard]] std::size_t n_partitions() const noexcept { return n_partitions_; }

 private:
  PartitionKdTree() = default;

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t n_partitions_ = 0;
  std::size_t dim_ = 0;
  simd::Metric metric_ = simd::Metric::kL2;
};

}  // namespace annsim::kdtree
