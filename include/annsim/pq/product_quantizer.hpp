#pragma once
/// \file product_quantizer.hpp
/// \brief Product quantization (Jégou et al., TPAMI 2011 — the paper's
/// reference [10]): split vectors into M sub-spaces, vector-quantize each
/// with its own 256-entry codebook, and answer queries through asymmetric
/// distance computation (ADC) lookup tables.
///
/// Built to reproduce §V-F's closing comparison: compressed indexes answer
/// billion-scale queries in a single node's memory but their recall
/// *plateaus* — the quantization error puts a ceiling no beam widening can
/// cross, unlike the uncompressed HNSW+VP system.

#include <cstdint>
#include <vector>

#include "annsim/common/serialize.hpp"
#include "annsim/data/dataset.hpp"

namespace annsim::pq {

struct PqParams {
  std::size_t m = 8;           ///< sub-quantizer count (dim must divide by m)
  std::size_t ks = 256;        ///< centroids per sub-space (8-bit codes)
  std::size_t train_iters = 12;
  std::uint64_t seed = 17;
};

class ProductQuantizer {
 public:
  /// Train M independent sub-codebooks on `train` (k-means per sub-space).
  static ProductQuantizer train(const data::Dataset& train,
                                const PqParams& params);

  /// Encode one vector into m bytes.
  void encode(const float* v, std::uint8_t* code) const;
  [[nodiscard]] std::vector<std::uint8_t> encode(const float* v) const;

  /// Encode every row of a dataset (n * m bytes, row-major).
  [[nodiscard]] std::vector<std::uint8_t> encode_dataset(
      const data::Dataset& data) const;

  /// Reconstruct the vector a code represents (codebook centroids).
  [[nodiscard]] std::vector<float> decode(const std::uint8_t* code) const;

  /// ADC lookup table for a query: m x ks squared sub-distances.
  [[nodiscard]] std::vector<float> adc_table(const float* query) const;

  /// Squared L2 approximation from a table and a code (m lookups).
  [[nodiscard]] float adc_distance(const std::vector<float>& table,
                                   const std::uint8_t* code) const;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t m() const noexcept { return params_.m; }
  [[nodiscard]] std::size_t ks() const noexcept { return params_.ks; }
  [[nodiscard]] std::size_t sub_dim() const noexcept { return sub_dim_; }
  [[nodiscard]] std::size_t code_bytes() const noexcept { return params_.m; }

  void serialize(BinaryWriter& w) const;
  static ProductQuantizer deserialize(BinaryReader& r);

  /// Default-constructs an untrained quantizer (for deserialization and
  /// container members); using it before train/deserialize is undefined.
  ProductQuantizer() = default;

 private:
  PqParams params_;
  std::size_t dim_ = 0;
  std::size_t sub_dim_ = 0;
  /// Codebooks, m x ks x sub_dim floats (sub-space-major).
  std::vector<float> codebooks_;

  [[nodiscard]] const float* centroid(std::size_t sub, std::size_t idx) const {
    return codebooks_.data() + (sub * params_.ks + idx) * sub_dim_;
  }
};

}  // namespace annsim::pq
