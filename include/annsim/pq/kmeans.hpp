#pragma once
/// \file kmeans.hpp
/// \brief Lloyd's k-means — the coarse quantizer of the IVF-PQ comparison
/// index and the sub-space codebook trainer of the product quantizer.

#include <cstdint>
#include <vector>

#include "annsim/common/thread_pool.hpp"
#include "annsim/data/dataset.hpp"

namespace annsim::pq {

struct KMeansParams {
  std::size_t k = 256;
  std::size_t max_iters = 15;
  /// Stop when the relative inertia improvement falls below this.
  double tolerance = 1e-4;
  std::uint64_t seed = 5;
};

struct KMeansResult {
  data::Dataset centroids;               ///< k x dim
  std::vector<std::uint32_t> assignment; ///< per input row
  double inertia = 0.0;                  ///< sum of squared distances
  std::size_t iters_run = 0;
};

/// Standard Lloyd iterations with k-means++-style seeding (first center
/// uniform, subsequent centers distance-weighted). Empty clusters are
/// re-seeded from the farthest points.
[[nodiscard]] KMeansResult kmeans(const data::Dataset& data,
                                  const KMeansParams& params,
                                  ThreadPool* pool = nullptr);

}  // namespace annsim::pq
