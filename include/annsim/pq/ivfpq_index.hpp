#pragma once
/// \file ivfpq_index.hpp
/// \brief IVF-PQ: an inverted-file index over a coarse k-means quantizer
/// with product-quantized residuals — the compressed single-node index
/// family ([13], [14]) that §V-F contrasts against the paper's uncompressed
/// distributed design.

#include <cstdint>
#include <vector>

#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/pq/kmeans.hpp"
#include "annsim/pq/product_quantizer.hpp"

namespace annsim::pq {

struct IvfPqParams {
  std::size_t nlist = 64;   ///< coarse centroids (inverted lists)
  std::size_t nprobe = 8;   ///< default lists scanned per query
  PqParams pq;              ///< residual quantizer
  std::size_t coarse_iters = 15;
  std::uint64_t seed = 23;
};

/// Memory-resident compressed index: stores only m bytes per vector plus the
/// coarse assignment. Search = probe the nprobe nearest lists, score codes
/// with per-list residual ADC tables.
class IvfPqIndex {
 public:
  /// Build over `data` (referenced for ids only; vectors are not retained —
  /// that is the point of a compressed index).
  static IvfPqIndex build(const data::Dataset& data, const IvfPqParams& params);

  /// Approximate k-NN; `nprobe` = 0 uses the configured default. Distances
  /// are ADC approximations of L2 (not exact), sorted ascending.
  [[nodiscard]] std::vector<Neighbor> search(const float* query, std::size_t k,
                                             std::size_t nprobe = 0) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t dim() const noexcept { return pq_.dim(); }
  [[nodiscard]] const IvfPqParams& params() const noexcept { return params_; }

  /// Compressed footprint in bytes (codes + ids + codebooks + centroids).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  IvfPqIndex() = default;

  IvfPqParams params_;
  std::size_t n_ = 0;
  ProductQuantizer pq_;
  data::Dataset coarse_centroids_;  ///< nlist x dim
  /// Per list: codes (m bytes per vector) and the matching global ids.
  std::vector<std::vector<std::uint8_t>> list_codes_;
  std::vector<std::vector<GlobalId>> list_ids_;
};

}  // namespace annsim::pq
