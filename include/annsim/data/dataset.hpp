#pragma once
/// \file dataset.hpp
/// \brief Row-major, SIMD-padded vector dataset with global-id tracking.
///
/// A Dataset is both the full corpus and — after partitioning — each
/// partition's local slice; `ids()` maps local row indices back to global
/// point ids so partial k-NN results can be merged at the master.

#include <cstddef>
#include <span>
#include <vector>

#include "annsim/common/aligned_buffer.hpp"
#include "annsim/common/error.hpp"
#include "annsim/common/types.hpp"

namespace annsim::data {

class Dataset {
 public:
  Dataset() noexcept = default;

  /// Allocate an n x dim dataset (zero-filled) with identity global ids.
  Dataset(std::size_t n, std::size_t dim) { reset(n, dim); }

  void reset(std::size_t n, std::size_t dim) {
    ANNSIM_CHECK(dim > 0 || n == 0);
    n_ = n;
    dim_ = dim;
    stride_ = (dim + 7) / 8 * 8;  // pad rows to 8 floats for SIMD tails
    storage_.reset(n * stride_);
    ids_.resize(n);
    for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<GlobalId>(i);
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  [[nodiscard]] float* row(std::size_t i) noexcept { return storage_.data() + i * stride_; }
  [[nodiscard]] const float* row(std::size_t i) const noexcept {
    return storage_.data() + i * stride_;
  }

  [[nodiscard]] std::span<float> row_span(std::size_t i) noexcept {
    return {row(i), dim_};
  }
  [[nodiscard]] std::span<const float> row_span(std::size_t i) const noexcept {
    return {row(i), dim_};
  }

  void set_row(std::size_t i, std::span<const float> values) {
    ANNSIM_CHECK(i < n_ && values.size() == dim_);
    std::copy(values.begin(), values.end(), row(i));
  }

  /// Global id of local row i.
  [[nodiscard]] GlobalId id(std::size_t i) const noexcept { return ids_[i]; }
  void set_id(std::size_t i, GlobalId id) noexcept { ids_[i] = id; }
  [[nodiscard]] std::span<const GlobalId> ids() const noexcept { return ids_; }

  /// Extract the given rows (with their global ids) into a new Dataset.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> rows) const {
    Dataset out(rows.size(), dim_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ANNSIM_CHECK(rows[i] < n_);
      out.set_row(i, row_span(rows[i]));
      out.set_id(i, ids_[rows[i]]);
    }
    return out;
  }

  /// Contiguous range [begin, end) as a new Dataset.
  [[nodiscard]] Dataset slice(std::size_t begin, std::size_t end) const {
    ANNSIM_CHECK(begin <= end && end <= n_);
    Dataset out(end - begin, dim_);
    for (std::size_t i = begin; i < end; ++i) {
      out.set_row(i - begin, row_span(i));
      out.set_id(i - begin, ids_[i]);
    }
    return out;
  }

  /// Append all rows of another dataset (same dim), keeping its global ids.
  void append(const Dataset& other) {
    if (other.empty()) return;
    if (empty() && dim_ == 0) {
      *this = other;
      return;
    }
    ANNSIM_CHECK(other.dim_ == dim_);
    Dataset merged(n_ + other.n_, dim_);
    for (std::size_t i = 0; i < n_; ++i) {
      merged.set_row(i, row_span(i));
      merged.set_id(i, ids_[i]);
    }
    for (std::size_t i = 0; i < other.n_; ++i) {
      merged.set_row(n_ + i, other.row_span(i));
      merged.set_id(n_ + i, other.ids_[i]);
    }
    *this = std::move(merged);
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
  AlignedBuffer<float> storage_;
  std::vector<GlobalId> ids_;
};

}  // namespace annsim::data
