#pragma once
/// \file recipes.hpp
/// \brief Synthetic stand-ins for the paper's datasets (Table I).
///
/// The real corpora (ANN_SIFT1B, DEEP1B, ANN_GIST1M) are hundreds of GB and
/// unavailable offline; each recipe reproduces the *geometry that matters* —
/// dimension, value range/normalisation, and cluster structure — at a
/// configurable scale, with a matching query distribution. SYN_1M/SYN_10M are
/// regenerated with our MDCGen re-implementation exactly as in the paper.

#include <cstdint>
#include <string>

#include "annsim/data/dataset.hpp"
#include "annsim/data/mdcgen.hpp"

namespace annsim::data {

/// A base corpus plus its query set (ground truth is computed separately).
struct Workload {
  std::string name;
  Dataset base;
  Dataset queries;
};

/// SIFT-like: 128-d, non-negative byte-range descriptor-style vectors with
/// strong cluster structure (stands in for ANN_SIFT1B, downscaled).
[[nodiscard]] Workload make_sift_like(std::size_t n_base, std::size_t n_queries,
                                      std::uint64_t seed = 20200901);

/// DEEP-like: 96-d, L2-normalised CNN-descriptor-style vectors
/// (stands in for DEEP1B, downscaled).
[[nodiscard]] Workload make_deep_like(std::size_t n_base, std::size_t n_queries,
                                      std::uint64_t seed = 20200902);

/// GIST-like: 960-d heavy-tailed clustered vectors (stands in for
/// ANN_GIST1M, downscaled) — the extreme-dimension regime of Table III.
[[nodiscard]] Workload make_gist_like(std::size_t n_base, std::size_t n_queries,
                                      std::uint64_t seed = 20200903);

/// SYN recipe from the paper: MDCGen, 10 clusters, Gaussian+uniform,
/// outliers, queries uniform in a single cluster with compactness 0.01.
/// `dim` is 512 for SYN_1M and 256 for SYN_10M in the paper.
[[nodiscard]] Workload make_syn(std::size_t n_base, std::size_t dim,
                                std::size_t n_outliers, std::size_t n_queries,
                                std::uint64_t seed = 20200904);

/// Look up a recipe by paper dataset name ("SIFT", "DEEP", "GIST",
/// "SYN_1M", "SYN_10M"), downscaled to n_base points.
[[nodiscard]] Workload make_by_name(const std::string& name, std::size_t n_base,
                                    std::size_t n_queries,
                                    std::uint64_t seed = 20200905);

}  // namespace annsim::data
