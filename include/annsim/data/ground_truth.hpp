#pragma once
/// \file ground_truth.hpp
/// \brief Exact brute-force k-NN (the recall reference) and recall metrics.

#include <cstddef>
#include <vector>

#include "annsim/common/thread_pool.hpp"
#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::data {

/// Per-query exact k-NN lists, sorted ascending by distance.
using KnnResults = std::vector<std::vector<Neighbor>>;

/// Exact k-NN of every query against the base set (multi-threaded blocked
/// scan). Distances follow the DistanceComputer convention (true metric
/// distance for kL2).
[[nodiscard]] KnnResults brute_force_knn(const Dataset& base,
                                         const Dataset& queries, std::size_t k,
                                         simd::Metric metric,
                                         ThreadPool* pool = nullptr);

/// recall@k of one result list against its ground truth: fraction of the k
/// true neighbors present in the result (by id). Ties at the boundary are
/// credited via distance equality, matching standard ANN-benchmark practice.
[[nodiscard]] double recall_at_k(const std::vector<Neighbor>& result,
                                 const std::vector<Neighbor>& truth,
                                 std::size_t k);

/// Mean recall@k over a query batch.
[[nodiscard]] double mean_recall(const KnnResults& results,
                                 const KnnResults& truth, std::size_t k);

}  // namespace annsim::data
