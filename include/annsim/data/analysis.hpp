#pragma once
/// \file analysis.hpp
/// \brief Dataset geometry diagnostics: intrinsic dimensionality, neighbor
/// distance profiles, and partition-skew measures.
///
/// These quantities drive the paper-scale extrapolations (Table III's
/// density-rescaled F(q) radii) and help users predict how well VP routing
/// will localize their own data.

#include <cstddef>

#include "annsim/data/dataset.hpp"
#include "annsim/data/ground_truth.hpp"

namespace annsim::data {

/// Estimate intrinsic dimensionality from a ground-truth profile using the
/// k-NN distance growth law r_k ~ k^(1/d):  d = ln(k) / ln(r_k / r_1),
/// averaged over queries and clamped to [4, ambient_dim]. High-dimensional
/// descriptor sets typically land far below their ambient dimension.
[[nodiscard]] double intrinsic_dimension(const KnnResults& gt,
                                         std::size_t ambient_dim);

/// How the k-th-neighbor radius rescales when the corpus grows from
/// `n_from` to `n_to` points at fixed intrinsic dimension:
/// factor = (n_from / n_to)^(1/d_int). Multiplying measured GT radii by this
/// simulates billion-point density on a downscaled corpus.
[[nodiscard]] double density_radius_scale(std::size_t n_from, std::size_t n_to,
                                          double intrinsic_dim);

/// Distance-profile summary of a ground-truth set.
struct NeighborProfile {
  double mean_r1 = 0.0;        ///< mean distance to the nearest neighbor
  double mean_rk = 0.0;        ///< mean distance to the k-th neighbor
  double contrast = 0.0;       ///< mean (r_k - r_1) / r_k; -> 0 in high-d
  std::size_t k = 0;
};

[[nodiscard]] NeighborProfile neighbor_profile(const KnnResults& gt);

/// Coefficient of variation of per-partition query loads — the scalar
/// behind Fig 4(b): 0 = perfectly balanced.
[[nodiscard]] double load_imbalance_cv(
    const std::vector<std::uint64_t>& jobs_per_worker);

}  // namespace annsim::data
