#pragma once
/// \file vecs_io.hpp
/// \brief Readers/writers for the TEXMEX .fvecs / .bvecs / .ivecs formats
/// used by ANN_SIFT1B, DEEP1B and ANN_GIST1M.
///
/// Format: each row is a little-endian int32 `dim` followed by `dim` values
/// (float32 for fvecs, uint8 for bvecs, int32 for ivecs).

#include <cstdint>
#include <string>
#include <vector>

#include "annsim/data/dataset.hpp"

namespace annsim::data {

/// Load an .fvecs file; `max_rows` = 0 means all rows.
[[nodiscard]] Dataset load_fvecs(const std::string& path, std::size_t max_rows = 0);

/// Load a .bvecs file (bytes are widened to float); `max_rows` = 0 means all.
[[nodiscard]] Dataset load_bvecs(const std::string& path, std::size_t max_rows = 0);

/// Load an .ivecs file (e.g. ground-truth neighbor id lists).
[[nodiscard]] std::vector<std::vector<std::int32_t>> load_ivecs(
    const std::string& path, std::size_t max_rows = 0);

void save_fvecs(const std::string& path, const Dataset& ds);
void save_bvecs(const std::string& path, const Dataset& ds);
void save_ivecs(const std::string& path,
                const std::vector<std::vector<std::int32_t>>& rows);

}  // namespace annsim::data
