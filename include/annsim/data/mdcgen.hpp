#pragma once
/// \file mdcgen.hpp
/// \brief MDCGen-style multidimensional cluster generator (Iglesias et al.,
/// Journal of Classification 2019) — the tool the paper used to produce the
/// SYN_1M and SYN_10M datasets — re-implemented from scratch.
///
/// Supports per-cluster Gaussian or uniform intra-cluster distributions,
/// cluster-mass imbalance, outlier injection, and compactness-controlled
/// query-set generation inside a single cluster (the paper generates query
/// sets "using uniform distribution in a single cluster with a compactness
/// factor of 0.01").

#include <cstddef>
#include <cstdint>
#include <vector>

#include "annsim/common/rng.hpp"
#include "annsim/data/dataset.hpp"

namespace annsim::data {

/// Intra-cluster point distribution.
enum class ClusterDistribution { kGaussian, kUniform };

struct MDCGenParams {
  std::size_t n_points = 100000;  ///< Total points, including outliers.
  std::size_t dim = 64;
  std::size_t n_clusters = 10;
  std::size_t n_outliers = 500;   ///< Uniform noise over the whole domain.

  /// Per-cluster distributions; cycled if shorter than n_clusters. Empty
  /// means alternate Gaussian/uniform (the paper uses both kinds).
  std::vector<ClusterDistribution> distributions;

  double domain_min = 0.0;       ///< Hyper-box domain lower bound (per axis).
  double domain_max = 1.0;       ///< Hyper-box domain upper bound (per axis).
  double compactness = 0.05;     ///< Cluster radius as a fraction of domain span.
  double mass_imbalance = 0.3;   ///< 0 = equal-size clusters; 1 = highly skewed.
  std::uint64_t seed = 42;
};

/// Generator output: the points plus the cluster geometry needed to derive
/// query sets and to verify generator properties in tests.
struct MDCGenOutput {
  Dataset points;
  std::vector<std::uint32_t> labels;    ///< Cluster id per point; n_clusters = outlier.
  Dataset centroids;                    ///< n_clusters x dim.
  std::vector<double> radii;            ///< Cluster radius (domain units).
  std::vector<std::size_t> cluster_sizes;
};

class MDCGenerator {
 public:
  explicit MDCGenerator(MDCGenParams params);

  /// Generate the full dataset.
  [[nodiscard]] MDCGenOutput generate() const;

  /// Generate `n_queries` queries uniformly inside cluster `cluster_id` of a
  /// previous output, with the given compactness factor (radius fraction of
  /// the domain span) — the paper's query-set recipe.
  [[nodiscard]] Dataset generate_queries(const MDCGenOutput& out,
                                         std::size_t n_queries,
                                         std::size_t cluster_id,
                                         double compactness,
                                         std::uint64_t seed) const;

  [[nodiscard]] const MDCGenParams& params() const noexcept { return params_; }

 private:
  MDCGenParams params_;
};

}  // namespace annsim::data
