#pragma once
/// \file machine_model.hpp
/// \brief Cray-XC40-like machine model used by the discrete-event
/// performance simulator.
///
/// The paper's testbed: 1376 nodes, 2 x 12-core Intel Xeon Haswell @2.5 GHz,
/// 128 GB per node, Cray Aries interconnect. Message time follows the
/// Hockney model (latency + size/bandwidth), with distinct intra-node
/// (shared-memory) and inter-node (network) parameters.

#include <cstddef>
#include <cstdint>

namespace annsim::cluster {

struct MachineParams {
  std::size_t cores_per_node = 24;      ///< 2 sockets x 12 cores

  // Hockney parameters (seconds, bytes/second).
  double intra_node_latency = 3.0e-7;   ///< shared-memory copy start-up
  double intra_node_bandwidth = 2.0e10; ///< ~20 GB/s effective
  double inter_node_latency = 1.3e-6;   ///< Aries ~1.3 us
  double inter_node_bandwidth = 8.0e9;  ///< ~8 GB/s effective per pair

  /// Software overhead charged to the CPU for posting a nonblocking
  /// send/receive (distinct from wire time, which is overlappable).
  double message_cpu_overhead = 4.0e-7;

  /// One-sided get_accumulate end-to-end latency (network RTT + atomic).
  double rma_op_latency = 2.5e-6;
};

class MachineModel {
 public:
  explicit MachineModel(MachineParams params = {}) noexcept : p_(params) {}

  [[nodiscard]] const MachineParams& params() const noexcept { return p_; }

  /// Node index hosting a given core (cores are packed by node).
  [[nodiscard]] std::size_t node_of_core(std::size_t core) const noexcept {
    return core / p_.cores_per_node;
  }

  [[nodiscard]] std::size_t nodes_for_cores(std::size_t cores) const noexcept {
    return (cores + p_.cores_per_node - 1) / p_.cores_per_node;
  }

  /// Hockney time for one message between two cores.
  [[nodiscard]] double message_seconds(std::size_t src_core, std::size_t dst_core,
                                       std::size_t bytes) const noexcept {
    if (node_of_core(src_core) == node_of_core(dst_core)) {
      return p_.intra_node_latency + double(bytes) / p_.intra_node_bandwidth;
    }
    return p_.inter_node_latency + double(bytes) / p_.inter_node_bandwidth;
  }

  /// Wire time of a one-sided accumulate of `bytes` to a remote core.
  [[nodiscard]] double rma_seconds(std::size_t bytes) const noexcept {
    return p_.rma_op_latency + double(bytes) / p_.inter_node_bandwidth;
  }

 private:
  MachineParams p_;
};

}  // namespace annsim::cluster
