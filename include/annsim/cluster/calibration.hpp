#pragma once
/// \file calibration.hpp
/// \brief Calibrates the compute-side cost models of the performance
/// simulator from *measured* wall-clock on this host.
///
/// The scaling experiments run at 256-8192 simulated cores over 10^9-point
/// datasets; those cannot execute for real here. Instead we measure the real
/// kernels (HNSW search/insert, exact KD/VP scans, distance evaluations) on
/// downscaled indexes built from the same data recipes, fit the published
/// asymptotics (HNSW search ~ ln n, HNSW insert ~ ln n per point, exact scan
/// ~ n), and let the discrete-event simulator extrapolate. Shapes — who
/// wins, scaling slopes, crossovers — come from the model structure; the
/// constants come from this calibration.

#include <cstddef>

#include "annsim/data/dataset.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::cluster {

/// Compute-side cost constants (all seconds), fitted on this host and then
/// rescaled to the paper's per-core speed via `core_speed_ratio`.
struct CalibratedCosts {
  /// HNSW search: t(n) = hnsw_query_c * ln(n) for an n-point partition.
  double hnsw_query_c = 0.0;
  /// HNSW insert: t(n) = hnsw_insert_c * ln(n) per point.
  double hnsw_insert_c = 0.0;
  /// One distance evaluation at the calibrated dimensionality.
  double dist_eval = 0.0;
  /// Exact scan of one point (distance + heap push).
  double exact_scan_per_point = 0.0;
  /// VP-tree routing of one query at the master: t = route_c * ln(parts).
  double route_c = 0.0;

  /// Ratio of paper-machine per-core speed to this host (1.0 = identical).
  double core_speed_ratio = 1.0;

  // --- at-scale corrections -------------------------------------------
  // The calibration runs on cache-resident indexes with the default beam
  // width; the paper's billion-scale runs search multi-GB partitions with
  // beams tuned for 0.85-0.91 recall at 10^9 points. Working backward from
  // the paper's absolute times (~4 core-seconds per query at 256 cores on
  // SIFT1B), their per-job cost sits in the tens of milliseconds — these
  // two factors reproduce that regime. The *shapes* the benches report are
  // insensitive to their exact values as long as local search dominates the
  // master's dispatch loop, which is the regime the paper demonstrably ran
  // in.

  /// Paper-scale beam width relative to the calibrated ef (recall tuning).
  double beam_ratio = 8.0;
  /// Slowdown of pointer-chasing search once a partition far exceeds cache.
  double dram_penalty = 18.0;
  /// Partition size up to which the index is considered cache-resident.
  std::size_t cache_resident_n = 4000;
  /// Exact KD-tree search vs a perfect blocked SIMD scan: tree traversal
  /// and backtracking touch points with poor locality (PANDA mitigates but
  /// does not eliminate this with SIMD leaf buckets).
  double kd_traversal_overhead = 3.0;

  [[nodiscard]] double hnsw_query_seconds(std::size_t partition_n) const;
  [[nodiscard]] double hnsw_build_seconds(std::size_t partition_n) const;
  [[nodiscard]] double exact_search_seconds(std::size_t partition_n) const;
  [[nodiscard]] double route_seconds(std::size_t n_partitions) const;

  /// Memory-pressure multiplier alone (1 at cache-resident sizes, ramping
  /// to dram_penalty) — for callers that measured their own beam cost.
  [[nodiscard]] double memory_factor(std::size_t partition_n) const;

  /// Per-query HNSW cost in the paper's deployment regime (recall-tuned
  /// beam + memory pressure on out-of-cache partitions). `beam_override`
  /// replaces beam_ratio when nonzero — smaller corpora (e.g. GIST1M) hit
  /// the paper's recall targets with beams close to the calibrated ef.
  [[nodiscard]] double hnsw_query_seconds_at_scale(
      std::size_t partition_n, double beam_override = 0.0) const;
  /// Exact KD search cost: scan fraction x traversal overhead x a
  /// bandwidth-bound share of the memory penalty.
  [[nodiscard]] double exact_search_seconds_at_scale(std::size_t partition_n,
                                                     double scan_fraction) const;
};

struct CalibrationConfig {
  /// Index sizes to measure (the ln-n fit is over these).
  std::size_t small_n = 4000;
  std::size_t large_n = 16000;
  std::size_t n_queries = 64;
  std::size_t k = 10;
  hnsw::HnswParams hnsw;
  std::uint64_t seed = 99;
};

/// Run the measurements on (a sample of) `base` and fit the cost constants.
[[nodiscard]] CalibratedCosts calibrate(const data::Dataset& base,
                                        const data::Dataset& queries,
                                        const CalibrationConfig& config);

/// A pre-measured default (used by fast unit tests and when benches opt out
/// of live calibration); derived from a SIFT-like run on a typical x86 core.
[[nodiscard]] CalibratedCosts default_costs();

}  // namespace annsim::cluster
