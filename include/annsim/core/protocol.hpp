#pragma once
/// \file protocol.hpp
/// \brief Wire formats of the master/worker search protocol (Algorithms 3-5)
/// and the layout of the master's one-sided result window (§IV-C1, Fig 2).

#include <cstdint>
#include <span>
#include <vector>

#include "annsim/common/serialize.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/common/types.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::core {

// Message tags of the search protocol.
inline constexpr mpi::Tag kTagQuery = 1;    ///< master -> worker: one (q, d) job
inline constexpr mpi::Tag kTagResult = 2;   ///< worker -> master: local k-NN (two-sided mode)
inline constexpr mpi::Tag kTagEoq = 3;      ///< master -> worker: End of Queries
inline constexpr mpi::Tag kTagDone = 4;     ///< worker -> master: all jobs finished
inline constexpr mpi::Tag kTagTree = 5;     ///< worker 0 -> master: serialized VP tree
inline constexpr mpi::Tag kTagOwnerResult = 6;  ///< worker -> owner (multiple-owner mode)
inline constexpr mpi::Tag kTagOwnerBatch = 8;   ///< master -> owner: its query share
inline constexpr mpi::Tag kTagExpect = 9;       ///< master -> worker: total jobs to expect
inline constexpr mpi::Tag kTagDispatchCounts = 10;  ///< owner -> master: jobs per dest
inline constexpr mpi::Tag kTagReplica = 11;     ///< worker -> worker: partition replica
inline constexpr mpi::Tag kTagHeartbeat = 12;   ///< worker -> master: liveness beacon

// Write-plane control tags (streaming mutability). All four are reserved:
// they carry state-changing orders whose loss would silently diverge the
// replicas, so plain send() on them is a checker violation and the fault
// injector treats them as reliable (never dropped or delayed — though a dead
// worker still never receives them).
inline constexpr mpi::Tag kTagInsert = 13;    ///< master -> worker: rows to absorb
inline constexpr mpi::Tag kTagDelete = 14;    ///< master -> worker: ids to tombstone
inline constexpr mpi::Tag kTagWriteAck = 15;  ///< worker -> master: write/compact ack
inline constexpr mpi::Tag kTagCompact = 16;   ///< master -> worker: compaction order

/// One dispatched search job: query `query_id` on partition `partition`.
struct QueryJob {
  std::uint32_t query_id = 0;
  PartitionId partition = kInvalidPartition;
  std::uint32_t k = 0;
  std::uint32_t ef = 0;          ///< 0 = index default
  std::uint32_t reply_to = 0;    ///< comm rank that merges the result
  std::vector<float> query;      ///< the query vector
};

[[nodiscard]] std::vector<std::byte> encode_query_job(const QueryJob& job);
[[nodiscard]] QueryJob decode_query_job(std::span<const std::byte> bytes);

/// A worker's local k-NN result for one job.
struct LocalResult {
  std::uint32_t query_id = 0;
  PartitionId partition = kInvalidPartition;
  std::vector<Neighbor> neighbors;  ///< sorted ascending by distance
};

[[nodiscard]] std::vector<std::byte> encode_local_result(const LocalResult& r);
[[nodiscard]] LocalResult decode_local_result(std::span<const std::byte> bytes);

/// Completion notice: how many jobs this worker processed (Fig 4(b) data).
struct DoneNotice {
  std::uint64_t jobs_processed = 0;
  double compute_seconds = 0.0;  ///< time spent in local searches
  double comm_seconds = 0.0;     ///< time spent in send/accumulate calls
  double route_seconds = 0.0;    ///< owner-side routing (multiple-owner mode)
};

// ---- write plane ------------------------------------------------------

/// Streaming inserts bound for one worker: each row is addressed to a hosted
/// partition's segmented replica. One batch per worker per write round.
struct WriteBatch {
  struct Row {
    PartitionId partition = kInvalidPartition;
    GlobalId id = kInvalidGlobalId;
    /// Master-assigned global log sequence number. Every replica of one row
    /// logs the same LSN, so a checkpoint watermark taken on any worker is
    /// comparable with any worker's WAL at replay time.
    std::uint64_t lsn = 0;
    std::vector<float> vec;
  };
  std::vector<Row> rows;
};

[[nodiscard]] std::vector<std::byte> encode_write_batch(const WriteBatch& b);
[[nodiscard]] WriteBatch decode_write_batch(std::span<const std::byte> bytes);

/// Ids to tombstone. Broadcast to every alive worker (the master has no
/// id -> partition map; a worker not hosting an id simply ignores it).
struct DeleteBatch {
  std::vector<GlobalId> ids;
  /// Parallel to `ids`: the master-assigned LSN of each tombstone (same
  /// value on every worker, see WriteBatch::Row::lsn). Empty batches from
  /// pre-WAL callers decode as all-zero.
  std::vector<std::uint64_t> lsns;
};

[[nodiscard]] std::vector<std::byte> encode_delete_batch(const DeleteBatch& b);
[[nodiscard]] DeleteBatch decode_delete_batch(std::span<const std::byte> bytes);

/// Worker's acknowledgement of one write round or compaction order.
struct WriteAck {
  std::uint64_t inserted = 0;        ///< rows absorbed into delta tiers
  std::uint64_t erased = 0;          ///< tombstones that hit a live id
  std::uint64_t max_delta_fill = 0;  ///< fullest delta across hosted replicas
  std::uint64_t compactions = 0;     ///< replicas compacted by this order
};

[[nodiscard]] std::vector<std::byte> encode_write_ack(const WriteAck& a);
[[nodiscard]] WriteAck decode_write_ack(std::span<const std::byte> bytes);

// ---- one-sided result window -----------------------------------------
//
// The master exposes one fixed-size slot per query:
//   [ u32 merged_count | u32 pad | u64 partition_mask[W] | Neighbor[k] ]
// Workers fold their local k-NN into a slot with a single atomic
// get_accumulate whose merge op performs the sorted k-NN merge and bumps
// merged_count. The master knows |F(q)| per query, so a slot is final once
// merged_count reaches it.
//
// The partition mask (W = ceil(n_partitions / 64) words, present only when
// the layout declares n_partitions > 0) records which partitions have been
// merged. It makes failover retries idempotent: a worker that died mid-batch
// may already have landed some of its merges, and a replica re-running the
// same job must not double-merge the partition. The merge op skips an origin
// whose partition bit is already set, and the master reads the mask both to
// poll progress and to attribute per-query coverage. With n_partitions == 0
// the mask is absent and the byte layout is exactly the legacy one.

struct SlotLayout {
  std::size_t k = 0;
  std::size_t n_partitions = 0;  ///< 0 = no partition mask (legacy layout)

  [[nodiscard]] std::size_t mask_words() const noexcept {
    return (n_partitions + 63) / 64;
  }
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return sizeof(std::uint64_t) + mask_words() * sizeof(std::uint64_t);
  }
  [[nodiscard]] std::size_t slot_bytes() const noexcept {
    return header_bytes() + k * sizeof(Neighbor);
  }
  [[nodiscard]] std::size_t window_bytes(std::size_t n_queries) const noexcept {
    return n_queries * slot_bytes();
  }
  [[nodiscard]] std::size_t slot_offset(std::size_t query_id) const noexcept {
    return query_id * slot_bytes();
  }
};

/// True when `mask` (slot partition-mask words) has partition `p`'s bit set.
[[nodiscard]] bool mask_contains(std::span<const std::uint64_t> mask,
                                 PartitionId p) noexcept;

/// Serialize a local result into the accumulate origin-buffer format
/// (count=1, then exactly k neighbors, padded with +inf sentinels). When the
/// layout carries a partition mask, `partition` must identify the searched
/// partition so the merge can deduplicate failover retries.
[[nodiscard]] std::vector<std::byte> encode_slot_update(
    std::span<const Neighbor> neighbors, const SlotLayout& layout,
    PartitionId partition = kInvalidPartition);

/// The merge op passed to Window::get_accumulate: k-NN-merge the origin
/// neighbors into the target slot and add the origin's merged_count. With a
/// partition mask, an origin whose partition bit is already set in the target
/// is dropped (idempotent retry).
[[nodiscard]] mpi::Window::MergeOp knn_slot_merge(const SlotLayout& layout);

/// Slot header only (cheap poll): merged count plus partition mask.
struct SlotHeader {
  std::uint32_t merged_count = 0;
  std::vector<std::uint64_t> mask;  ///< empty when the layout has no mask

  [[nodiscard]] bool contains_partition(PartitionId p) const noexcept {
    return mask_contains(mask, p);
  }
};
[[nodiscard]] SlotHeader decode_slot_header(std::span<const std::byte> slot,
                                            const SlotLayout& layout);

/// Decode a final slot into (merged_count, partition mask, sorted neighbors
/// without sentinels).
struct DecodedSlot {
  std::uint32_t merged_count = 0;
  std::vector<std::uint64_t> mask;  ///< empty when the layout has no mask
  std::vector<Neighbor> neighbors;

  [[nodiscard]] bool contains_partition(PartitionId p) const noexcept {
    return mask_contains(mask, p);
  }
};
[[nodiscard]] DecodedSlot decode_slot(std::span<const std::byte> slot,
                                      const SlotLayout& layout);

}  // namespace annsim::core
