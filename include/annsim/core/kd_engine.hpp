#pragma once
/// \file kd_engine.hpp
/// \brief The Table III baseline: a PANDA-style distributed KD-tree engine
/// (Patwary et al. [1]) giving *exact* k-NN, run on the same simulated MPI
/// runtime and the same master-worker protocol as the VP+HNSW engine.
///
/// Exactness requires visiting every partition whose KD cell intersects the
/// query ball at the true k-th distance — the set that explodes with
/// dimensionality and makes this baseline ~10X slower on 96-960-d data.
///
/// Substitution note (see DESIGN.md): PANDA builds its KD partition tree
/// distributedly; here the partition tree is built at the master (the data
/// is in shared memory either way) and partitions are handed to workers.
/// Query-time behaviour — the object of Table III — is unaffected.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "annsim/data/dataset.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/kdtree/kd_tree.hpp"
#include "annsim/mpi/mpi.hpp"

namespace annsim::core {

struct KdEngineConfig {
  std::size_t n_workers = 8;           ///< power of two
  std::size_t threads_per_worker = 2;
  std::size_t leaf_size = 16;          ///< local KD-tree leaf size
  simd::Metric metric = simd::Metric::kL2;
  std::uint64_t seed = 123;
};

struct KdSearchStats {
  double total_seconds = 0.0;
  double master_route_seconds = 0.0;
  double master_dispatch_seconds = 0.0;
  double master_merge_seconds = 0.0;
  double worker_compute_seconds = 0.0;
  std::uint64_t total_jobs = 0;
  double mean_partitions_per_query = 0.0;  ///< the dimensionality explosion
  std::vector<std::uint64_t> jobs_per_worker;
};

class DistributedKdEngine {
 public:
  DistributedKdEngine(const data::Dataset* base, KdEngineConfig config);
  ~DistributedKdEngine();

  DistributedKdEngine(const DistributedKdEngine&) = delete;
  DistributedKdEngine& operator=(const DistributedKdEngine&) = delete;

  void build();
  [[nodiscard]] bool built() const noexcept { return router_.has_value(); }
  [[nodiscard]] double build_seconds() const noexcept { return build_seconds_; }

  /// Exact distributed k-NN (two-phase: nearest cell, then the exact ball).
  [[nodiscard]] data::KnnResults search(const data::Dataset& queries,
                                        std::size_t k,
                                        KdSearchStats* stats = nullptr);

  [[nodiscard]] const kdtree::PartitionKdTree& router() const;
  [[nodiscard]] std::vector<std::size_t> partition_sizes() const;

 private:
  struct Shard {
    std::unique_ptr<data::Dataset> data;
    std::unique_ptr<kdtree::KdTree> index;
  };

  void master_search(mpi::Comm& world, const data::Dataset& queries,
                     std::size_t k, data::KnnResults& results,
                     KdSearchStats& stats);
  void worker_search(mpi::Comm& world);

  const data::Dataset* base_;
  KdEngineConfig config_;
  std::optional<kdtree::PartitionKdTree> router_;
  std::vector<Shard> shards_;  ///< one per worker
  double build_seconds_ = 0.0;
};

}  // namespace annsim::core
