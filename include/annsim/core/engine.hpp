#pragma once
/// \file engine.hpp
/// \brief The paper's system: a distributed approximate k-NN engine with
/// VP-tree partitioning, per-partition HNSW indexes, master-worker batched
/// search (Algorithms 3-4), one-sided result accumulation (§IV-C1),
/// replication-based load balancing (Algorithm 5), and the multiple-owner
/// dispatch variant (§IV).
///
/// The engine runs SPMD phases on the simulated MPI runtime with
/// `n_workers + 1` ranks (rank 0 = master process; worker w = rank w+1, and
/// partition w lives on worker w after construction). Because the runtime is
/// threads-as-ranks, per-worker state (partitions, local indexes) persists in
/// engine-owned storage between the build phase and search phases.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "annsim/core/local_index.hpp"
#include "annsim/core/partitioner.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/mpi/mpi.hpp"
#include "annsim/recovery/checkpoint.hpp"
#include "annsim/recovery/health.hpp"
#include "annsim/recovery/write_log.hpp"
#include "annsim/vptree/partition_vp_tree.hpp"

namespace annsim::core {

/// Who computes F(q) and dispatches jobs (§IV discusses both).
enum class DispatchStrategy {
  kMasterWorker,   ///< master routes every query (Algorithms 3 & 5)
  kMultipleOwner,  ///< queries hashed to owner workers, each owning routing
};

struct EngineConfig {
  std::size_t n_workers = 8;   ///< P processing cores (power of two)
  std::size_t replication = 1; ///< r; 1 = no replication (baseline)
  std::size_t n_probe = 4;     ///< |F(q)| in single-pass routing mode
  bool one_sided = true;       ///< RMA result accumulation vs two-sided sends
  bool exact_routing = false;  ///< two-phase F(q): nearest first, then the
                               ///< exact ball at the observed k-th distance
  DispatchStrategy strategy = DispatchStrategy::kMasterWorker;
  std::size_t threads_per_worker = 2;  ///< Algorithm 4's thread team size
  /// Build each worker's local index with threads_per_worker threads (the
  /// paper's multi-threaded HNSW construction). Off by default because
  /// parallel insertion order makes the graph — and therefore approximate
  /// results — run-to-run nondeterministic.
  bool parallel_local_build = false;

  /// Per-partition search algorithm (§VI: "any algorithm can be used for
  /// local indexing"). kBruteForce + exact_routing = exact distributed k-NN.
  LocalIndexKind local_index = LocalIndexKind::kHnsw;
  hnsw::HnswParams hnsw;
  pq::IvfPqParams ivfpq;  ///< used when local_index == kIvfPq
  /// Mutable-delta capacity per replica (local_index == kSegmented): how many
  /// streamed inserts a partition absorbs before compact() must re-freeze.
  std::size_t segment_delta_capacity = 1024;
  /// local_index == kSegmented only: frozen segments store SQ8 code rows
  /// (1 byte/dim) plus an exact float re-rank cache instead of full floats.
  /// ~4x smaller resident partitions and checkpoints; L2 / InnerProduct only.
  bool quantize_frozen = false;
  /// Fraction of each quantized segment's rows kept as exact floats for
  /// re-ranking (the recall-recovery knob; ~0.01-0.05 is the useful range).
  double float_cache_fraction = 0.02;
  PartitionerConfig partitioner;
  std::uint64_t seed = 123;

  // ---- fault tolerance (see fault.hpp for the failure model) ----
  /// Fault schedule injected into the search runtime (chaos runs). Runtime
  /// ranks: 0 is the master, worker w is rank w + 1 — kill rules must name
  /// worker ranks. An enabled plan requires `result_timeout_ms > 0`, or the
  /// master would hang waiting on a silent worker. The engine marks the
  /// End-of-Queries tag reliable (control plane): termination always reaches
  /// live workers even under `drop_probability`, so a chaos run can degrade
  /// results but never hang the batch. `KillRule::at_step` triggers on the
  /// engine's query-dispatch clock: the master advances the runtime step once
  /// per query as it begins dispatching that query's jobs, so `at_step = s`
  /// kills the rank from (roughly) the s-th dispatched query onward.
  mpi::FaultPlan fault;
  /// Failure-detection deadline: a worker with outstanding jobs that shows
  /// no progress for this long is declared dead — not just for the batch but
  /// until heal() revives it — and its jobs fail over to live replicas.
  /// 0 (default) disables detection entirely — the search runs the exact
  /// pre-fault-tolerance code path. Detection supports master-worker
  /// single-pass routing only.
  double result_timeout_ms = 0.0;

  // ---- self-healing (see recovery/) ----
  /// Durable per-partition snapshot directory. Non-empty: build() (and
  /// load()) checkpoint every partition, and heal() restores a revived
  /// worker's replicas from disk instead of streaming them from peers.
  /// Empty (default): no checkpoints; heal() streams from surviving
  /// replicas.
  std::string checkpoint_dir;
  /// Per-worker write-ahead-log directory (`<wal_dir>/worker_<w>/`).
  /// Non-empty: every insert/delete is CRC-framed and fsynced to the
  /// worker's log *before* that worker acks the round on kTagWriteAck, so an
  /// acked write survives any crash — heal() and load() replay the log tail
  /// past each checkpoint's LSN watermark. Empty (default): no WAL; writes
  /// are durable only as of the last checkpoint.
  std::string wal_dir;
  /// Group commit: one fsync per worker per write round instead of one per
  /// record. Same durability contract (the ack waits for the sync either
  /// way); this is the knob that keeps the mutate-bench p999 budget intact.
  bool wal_group_commit = true;
  /// Checkpoint every Nth write round (1 = every round, the pre-WAL
  /// behavior). With a WAL the tail between checkpoints is replayable, so
  /// larger values trade checkpoint I/O for replay length.
  std::size_t checkpoint_every_rounds = 1;
  /// Heartbeat period for the liveness beacon each worker sends the master
  /// on a reliable control-plane tag while detection is armed. The master
  /// declares a worker dead when its heartbeats go silent for
  /// `result_timeout_ms` — even if the worker has no outstanding jobs.
  /// 0 (default) = result_timeout_ms / 4.
  double heartbeat_interval_ms = 0.0;

  // ---- usage-correctness checking (annsim::check) ----
  /// Run every engine runtime (build, search batches, heal) under the MPI
  /// usage verifier. ANNSIM_MPI_CHECK=1 in the environment force-enables
  /// this too. The engine declares its control-plane tags (EOQ, done,
  /// heartbeat) reserved and, when failure detection is armed, marks the
  /// by-design-abandonable data-plane tags best-effort — see DESIGN.md §4.9.
  bool mpi_check = false;
  /// Checked runtimes throw on violations (fatal). Set false to collect
  /// and inspect `DistributedAnnEngine::check_report()` instead.
  bool check_fatal = true;
};

struct BuildStats {
  double total_seconds = 0.0;
  double vp_tree_seconds = 0.0;      ///< max across workers
  double hnsw_seconds = 0.0;         ///< max across workers
  double replication_seconds = 0.0;  ///< max across workers
  std::vector<std::size_t> partition_sizes;
};

/// How much of a query's routing plan was actually searched. Equal counts
/// mean the full plan was covered; `searched < planned` marks a degraded
/// result (a partition lost all its live replicas mid-batch).
struct QueryCoverage {
  std::uint32_t partitions_searched = 0;
  std::uint32_t partitions_planned = 0;

  [[nodiscard]] bool degraded() const noexcept {
    return partitions_searched < partitions_planned;
  }
};

struct SearchStats {
  double total_seconds = 0.0;
  double master_route_seconds = 0.0;     ///< F(q) computation at master
  double master_dispatch_seconds = 0.0;  ///< isend loop at master
  double master_merge_seconds = 0.0;     ///< result merging at master
  double worker_compute_seconds = 0.0;   ///< sum over workers: local searches
  double worker_comm_seconds = 0.0;      ///< sum over workers: result returns
  std::vector<std::uint64_t> jobs_per_worker;  ///< Fig 4(b) raw data
  std::uint64_t total_jobs = 0;
  double mean_partitions_per_query = 0.0;
  mpi::TrafficStats traffic;  ///< runtime traffic during this search

  // ---- fault tolerance (nonzero only with result_timeout_ms > 0) ----
  std::uint64_t retries = 0;          ///< jobs re-dispatched after a death
  std::uint64_t failovers = 0;        ///< retried jobs a live replica completed
  /// Workers *newly* declared dead this batch. A worker already dead in the
  /// engine's ClusterHealth when the batch started is skipped at dispatch
  /// and not counted again — the health record is the single source of
  /// truth, so lifetime deaths are `health().workers[w].deaths`, not a sum
  /// of per-batch counters.
  std::uint64_t workers_failed = 0;
  std::uint64_t degraded_queries = 0; ///< queries with partial coverage
  /// Per-query coverage (filled when failure detection is armed).
  std::vector<QueryCoverage> coverage;
};

/// Outcome of one streaming write round (engine insert()/remove()).
/// Counters are summed across workers, so with replication r a row that
/// reached every replica contributes r to `inserted_replicas`.
struct WriteStats {
  /// Global ids assigned to the inserted rows, in input order. Ids come from
  /// a monotone stream counter that starts past the build corpus, so they
  /// never collide with existing ids.
  std::vector<GlobalId> assigned_ids;
  std::uint64_t inserted_replicas = 0;  ///< per-replica insert absorptions
  std::uint64_t erased_replicas = 0;    ///< per-replica tombstones placed
  /// Rows whose owning partition had no live replica at send time — the
  /// write is lost (the id is still consumed). Nonzero only mid-outage.
  std::uint64_t dropped_rows = 0;
  std::uint64_t max_delta_fill = 0;  ///< fullest delta seen in the acks
  /// Parallel to assigned_ids: true iff at least one worker the row was
  /// shipped to acked the round (ack ⇒ WAL-durable when a wal_dir is set).
  /// Rows acked by nobody must be treated as lost by durability-gating
  /// callers; rows in a round whose every target died mid-commit stay false.
  std::vector<char> row_acked;
  /// True iff every targeted worker acked this round. With a WAL, false
  /// means some log commit did not complete — the unacked rows may or may
  /// not survive a crash.
  bool all_acked = true;
};

/// Aggregate quantized-tier (SQ8) footprint across all hosted replicas.
/// Meaningful when local_index == kSegmented with quantize_frozen; all zero
/// otherwise. Totals double-count with replication, like partition_sizes().
struct CompressionStats {
  std::size_t quant_rows = 0;            ///< rows stored as SQ8 codes
  std::size_t quant_resident_bytes = 0;  ///< codes + re-rank caches + codebooks
  std::size_t quant_float_bytes = 0;     ///< full-float equivalent footprint
  std::size_t quant_cached_rows = 0;     ///< rows with an exact float copy
  std::uint64_t rerank_exact = 0;        ///< candidates re-scored exactly
  std::uint64_t rerank_coded = 0;        ///< candidates kept at SQ8 distance
  /// quant_float_bytes / quant_resident_bytes (0 when nothing is quantized).
  [[nodiscard]] double compression_ratio() const noexcept {
    return quant_resident_bytes == 0
               ? 0.0
               : double(quant_float_bytes) / double(quant_resident_bytes);
  }
};

/// Per-query completion hook for batched search: invoked by the master as
/// soon as query `qid`'s final merged result is known (before `search`
/// returns). In two-sided mode this fires as each query's last partial
/// arrives; in one-sided mode all slots finalize together at the end of the
/// batch epoch. `coverage.degraded()` flags a partial result (possible only
/// under failure detection). Runs on a runtime-internal thread — keep it
/// cheap, and synchronize any state it shares with the caller.
using QueryDoneFn =
    std::function<void(std::size_t qid, const std::vector<Neighbor>& result,
                       const QueryCoverage& coverage)>;

/// Per-query search-effort override, the engine half of brownout: under
/// overload the serving plane shrinks a query's beam width and fan-out
/// instead of shedding it. Both fields are caps — they can only reduce work
/// relative to the batch-level `ef` / `n_probe`, never raise the plan's
/// fan-out — and 0 means "no override" so a default-constructed entry is
/// full effort.
struct EffortOverride {
  std::uint32_t ef = 0;          ///< per-partition beam width; 0 = batch ef
  std::uint32_t max_probes = 0;  ///< cap on |F(q)|; 0 = config n_probe
};

/// Throws annsim::Error with a field-specific message when `config` is
/// unusable (zero workers/probes, replication outside [1, n_workers], ...).
/// Called from the engine constructor and again from build().
void validate_engine_config(const EngineConfig& config);

class DistributedAnnEngine {
 public:
  /// `base` is referenced, not owned, and must outlive the engine.
  DistributedAnnEngine(const data::Dataset* base, EngineConfig config);
  ~DistributedAnnEngine();

  DistributedAnnEngine(const DistributedAnnEngine&) = delete;
  DistributedAnnEngine& operator=(const DistributedAnnEngine&) = delete;
  DistributedAnnEngine(DistributedAnnEngine&&) noexcept = default;
  DistributedAnnEngine& operator=(DistributedAnnEngine&&) noexcept = default;

  /// Distributed construction: VP-tree partitioning (Algorithms 1-2), local
  /// HNSW builds, and partition replication.
  void build();

  [[nodiscard]] bool built() const noexcept { return router_.has_value(); }
  [[nodiscard]] const BuildStats& build_stats() const noexcept { return build_stats_; }

  /// Batched k-NN search (Algorithms 3-5). `ef` = 0 uses the index default.
  /// `on_query_done`, when set, reports each query's completion to online
  /// callers (the serving plane) before the batch as a whole returns.
  /// `efforts`, when non-empty, must hold one EffortOverride per query and
  /// caps that query's beam width / partition fan-out (brownout search;
  /// master-worker dispatch only).
  [[nodiscard]] data::KnnResults search(const data::Dataset& queries,
                                        std::size_t k, std::size_t ef = 0,
                                        SearchStats* stats = nullptr,
                                        const QueryDoneFn& on_query_done = {},
                                        std::span<const EffortOverride> efforts = {});

  // ---- streaming writes (local_index == kSegmented only) ----

  /// Insert a batch of vectors into the live index. The master routes each
  /// row to its nearest partition (same VP-tree as queries) and ships it to
  /// every live replica of that partition over the reserved write tags; the
  /// replicas absorb it into their mutable delta. Returns the assigned
  /// global ids — immediately searchable. Thread-safe against concurrent
  /// search() batches; write rounds themselves serialize.
  WriteStats insert(const data::Dataset& rows);

  /// Delete by global id: broadcast to every live worker, which tombstones
  /// the id on each hosted replica that holds it. Deleted ids stop appearing
  /// in results immediately; space is reclaimed by compact().
  WriteStats remove(std::span<const GlobalId> ids);

  /// Re-freeze every replica's delta + segments into one frozen segment
  /// (hot-swapped under the searches). Returns the number of replica
  /// compactions that did work. Safe to run from a background thread while
  /// search() batches are in flight.
  std::uint64_t compact();

  /// Fullest mutable delta across all hosted replicas — the serving plane's
  /// compaction trigger.
  [[nodiscard]] std::size_t max_delta_fill() const;

  /// Quantized-tier footprint summed over every hosted segmented replica.
  [[nodiscard]] CompressionStats compression_stats() const;

  /// The master's routing tree (valid after build()).
  [[nodiscard]] const vptree::PartitionVpTree& router() const;

  [[nodiscard]] std::vector<std::size_t> partition_sizes() const;
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Per-query routing plans — the F(q) the master would compute. Exposed so
  /// the discrete-event performance simulator replays the *identical*
  /// dispatch decisions at scale.
  [[nodiscard]] std::vector<std::vector<PartitionId>> plan_queries(
      const data::Dataset& queries) const;

  /// Persist the built index (router + every partition's data and local
  /// index) to one file; `load` restores a search-ready engine without the
  /// original corpus. The engine file does not record a checkpoint
  /// directory; pass `checkpoint_dir` to re-arm durable snapshots on the
  /// loaded engine (it checkpoints every partition immediately). Pass
  /// `wal_dir` to re-attach the write-ahead logs: the logs are recovered
  /// (torn tails truncated) and any records past the engine file's LSN are
  /// replayed into the segmented replicas before the engine is returned —
  /// the crash-restart path that makes every acked write reappear.
  void save(const std::string& path) const;
  static DistributedAnnEngine load(const std::string& path,
                                   const std::string& checkpoint_dir = "",
                                   const std::string& wal_dir = "");

  /// Attach per-worker write-ahead logs under `dir` (see
  /// EngineConfig::wal_dir). Existing logs are recovered and replayed into
  /// the live replicas, so calling this on a freshly built engine is a
  /// no-op beyond arming durability. Requires local_index == kSegmented.
  void enable_wal(const std::string& dir, bool group_commit = true);

  /// Is `id` present (and not tombstoned) in any hosted segmented replica?
  /// The WAL replay path uses this for idempotence; exposed because
  /// durability tests and benches want the same ground truth.
  [[nodiscard]] bool contains(GlobalId id) const;

  // ---- self-healing ----

  /// Per-worker liveness as tracked by the heartbeat/deadline monitor,
  /// persistent across search() batches. All-alive until a batch with
  /// failure detection armed observes a death.
  [[nodiscard]] const recovery::ClusterHealth& health() const noexcept {
    return health_;
  }
  /// Live copies of partition `p` (replicas hosted by alive workers).
  [[nodiscard]] std::size_t live_replicas(PartitionId p) const;
  /// Partitions whose live-copy count is below the configured replication
  /// factor, ascending. Non-empty means the cluster needs healing.
  [[nodiscard]] std::vector<PartitionId> under_replicated_partitions() const;

  /// Snapshot every partition into `config().checkpoint_dir` (no-op when
  /// empty). build() calls this automatically, as does load() when given a
  /// checkpoint directory; exposed so callers can re-checkpoint after
  /// healing.
  void save_checkpoints() const;

  /// Repair the cluster: revive every dead worker (clearing its fault-plan
  /// kill triggers) and restore its replicas — from the checkpoint store
  /// when one is configured, otherwise by streaming each partition from a
  /// surviving replica over the p2p data plane. Dispatch re-runs round-robin
  /// workgroup assignment naturally, so restored copies serve the very next
  /// batch. Safe to call with nothing to heal (reports zeros).
  recovery::HealReport heal();

  /// Cumulative annsim::check report across every runtime this engine ran
  /// (build, each search batch, heal). Empty unless checking is enabled via
  /// `EngineConfig::mpi_check` or ANNSIM_MPI_CHECK=1.
  [[nodiscard]] check::CheckReport check_report() const;

  /// Arm (or disarm) the MPI usage checker on every runtime this engine
  /// creates from now on. `fatal=false` accumulates violations into
  /// check_report() instead of throwing at runtime finalize — the mode the
  /// CLI benches use so a violation is reported once, at exit.
  void set_mpi_check(bool enabled, bool fatal = true) noexcept {
    config_.mpi_check = enabled;
    config_.check_fatal = fatal;
  }

  /// Install a schedule controller (annsim::explore) on every runtime this
  /// engine creates from now on: message deliveries, timed waits, and RMA
  /// ops route through its choice points, so an armed controller decides the
  /// interleaving. Pass nullptr to detach. Controlled runs require
  /// `threads_per_worker == 1` and `result_timeout_ms == 0` — every engine
  /// thread must be a tracked rank, or helper threads would race around the
  /// controller instead of being scheduled by it.
  void set_schedule(std::shared_ptr<mpi::ScheduleController> schedule) noexcept {
    schedule_ = std::move(schedule);
  }

 private:
  DistributedAnnEngine() = default;  // for load()

  struct Replica {
    // Heap-allocated so the index's dataset pointer stays valid when the
    // Replica moves into the worker store.
    std::unique_ptr<data::Dataset> data;
    std::unique_ptr<LocalIndex> index;
  };
  /// All replicas a worker hosts, keyed by partition id.
  using WorkerStore = std::map<PartitionId, Replica>;

  void master_search(mpi::Comm& world, const data::Dataset& queries,
                     std::size_t k, std::size_t ef, data::KnnResults& results,
                     SearchStats& stats, const QueryDoneFn& on_query_done,
                     mpi::FaultInjector* fault, std::vector<char>& alive,
                     std::vector<std::uint64_t>& heartbeats,
                     std::span<const EffortOverride> efforts);
  void worker_search(mpi::Comm& world, std::size_t k);
  /// Lazily create (or return) the engine-owned fault injector shared by
  /// every search runtime, so death flags and op budgets persist across
  /// batches. Null when the config's fault plan is inert.
  std::shared_ptr<mpi::FaultInjector> shared_injector();
  /// Install the verifier on an engine runtime per config_/environment
  /// (reserved + best-effort tag sets included). No-op when checking is off.
  void configure_runtime_check(mpi::Runtime& rt) const;
  /// Fold a finished runtime's report into the engine-lifetime report.
  void absorb_check_report(const mpi::Runtime& rt);
  /// One write round over the p2p plane: routes `rows` (when non-null) and
  /// broadcasts `deletes`. Shared implementation of insert()/remove().
  WriteStats apply_writes(const data::Dataset* rows,
                          std::span<const GlobalId> deletes);
  /// Liveness snapshot for the write plane, derived from the fault injector
  /// (not ClusterHealth, which belongs to the search plane's thread).
  std::vector<char> write_plane_alive(const mpi::FaultInjector* injector) const;
  /// Open (recovering if present) each worker's WAL under config_.wal_dir.
  /// No-op when wal_dir is empty or the logs are already open.
  void open_wals();
  /// Replay worker `w`'s WAL records with lsn > `after_lsn` into its hosted
  /// replicas (idempotent: inserts skip ids already present). When
  /// `only_partition` is set, records for other partitions are skipped —
  /// the per-replica filter heal() uses after a checkpoint restore. Returns
  /// records applied. Caller holds the topology lock.
  std::size_t replay_wal_into_worker(
      std::size_t w, std::uint64_t after_lsn,
      std::optional<PartitionId> only_partition = std::nullopt);
  void master_search_owner(mpi::Comm& world, const data::Dataset& queries,
                           std::size_t k, std::size_t ef,
                           data::KnnResults& results, SearchStats& stats,
                           const QueryDoneFn& on_query_done);
  void worker_search_owner(mpi::Comm& world, const data::Dataset& queries,
                           std::size_t k, std::size_t ef);

  const data::Dataset* base_ = nullptr;  ///< null after load()
  EngineConfig config_;
  std::optional<vptree::PartitionVpTree> router_;
  std::vector<WorkerStore> workers_;  ///< indexed by worker id (0..P-1)
  BuildStats build_stats_;
  /// Fault state shared across search runtimes (batches): a rank killed in
  /// batch n stays dead in batch n+1 until heal() revives it.
  std::shared_ptr<mpi::FaultInjector> injector_;
  /// Schedule controller installed on every engine runtime (null = free-run).
  std::shared_ptr<mpi::ScheduleController> schedule_;
  recovery::ClusterHealth health_;  ///< persistent liveness record
  check::CheckReport check_report_;  ///< merged across engine runtimes
  /// Next global id handed to a streamed insert. Starts one past the largest
  /// build-corpus id and never reuses a value, even across save/load.
  GlobalId next_stream_id_ = 0;
  /// Next write-ahead-log sequence number the master will assign. Global and
  /// monotone across all workers (every replica of one row logs the same
  /// LSN), persisted by save(), advanced past the replayed tail by load().
  std::uint64_t next_lsn_ = 1;
  /// Per-worker write-ahead logs (empty until wal_dir is configured).
  /// Indexed by worker id, parallel to workers_.
  std::vector<std::unique_ptr<recovery::WriteLog>> wals_;
  /// Highest LSN issued against each partition (deletes broadcast, so they
  /// bump every partition). heal() compares a revived worker's synced log
  /// position against this to decide whether its own WAL tail is current
  /// enough to replay, or whether the replica must stream from a peer that
  /// saw the writes the dead worker missed.
  std::vector<std::uint64_t> partition_last_lsn_;
  /// Write rounds since the last checkpoint (drives checkpoint_every_rounds).
  std::size_t rounds_since_checkpoint_ = 0;

  /// Synchronization for concurrent search / write / compact / heal.
  /// Heap-allocated so the engine stays movable (load() returns by value).
  ///   - topology: shared while a runtime reads `workers_` (search, write,
  ///     compact rounds), exclusive when the stores mutate (post-batch death
  ///     fold clearing a dead worker's store, heal() restoring it).
  ///   - write_api: serializes insert/remove/compact rounds end to end
  ///     (protects next_stream_id_ and keeps one write round in flight).
  ///   - check / injector: guard check_report_ merges and lazy injector
  ///     creation, which writes and searches may race on.
  struct Sync {
    std::shared_mutex topology;
    std::mutex write_api;
    std::mutex check;
    std::mutex injector;
    std::mutex checkpoint;
  };
  std::unique_ptr<Sync> sync_ = std::make_unique<Sync>();
};

}  // namespace annsim::core
