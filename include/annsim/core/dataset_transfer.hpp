#pragma once
/// \file dataset_transfer.hpp
/// \brief Packing/unpacking of dataset rows (with global ids) for transport
/// through the simulated MPI runtime — used by the construction shuffle and
/// by partition replication.

#include <span>
#include <vector>

#include "annsim/common/serialize.hpp"
#include "annsim/data/dataset.hpp"

namespace annsim::core {

/// Serialize the given rows of `d` (values + global ids).
[[nodiscard]] std::vector<std::byte> pack_dataset_rows(
    const data::Dataset& d, std::span<const std::size_t> rows);

/// Serialize all rows of `d`.
[[nodiscard]] std::vector<std::byte> pack_dataset(const data::Dataset& d);

/// Concatenate several packed buffers (same dim) into one Dataset.
[[nodiscard]] data::Dataset unpack_datasets(
    const std::vector<std::vector<std::byte>>& buffers, std::size_t dim);

/// Unpack a single packed buffer.
[[nodiscard]] data::Dataset unpack_dataset(std::span<const std::byte> buffer,
                                           std::size_t dim);

}  // namespace annsim::core
