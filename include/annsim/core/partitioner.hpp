#pragma once
/// \file partitioner.hpp
/// \brief Distributed VP-tree construction — Algorithms 1 and 2 of the paper.
///
/// All worker ranks cooperate to build the root (distributed vantage-point
/// selection + distributed median + MPI_Alltoallv shuffle); the rank set is
/// then split in half, each half building one child recursively, until every
/// rank holds exactly one partition. Worker 0 assembles the router tree from
/// the per-rank construction paths and the caller forwards it to the master.

#include <cstdint>
#include <vector>

#include "annsim/data/dataset.hpp"
#include "annsim/mpi/mpi.hpp"
#include "annsim/vptree/partition_vp_tree.hpp"

namespace annsim::core {

struct PartitionerConfig {
  /// Vantage-point candidates sampled per rank (paper: 100).
  std::size_t vantage_candidates = 100;
  /// Evaluation rows sampled per candidate-scoring pass.
  std::size_t vantage_sample = 256;
  std::uint64_t seed = 11;
  simd::Metric metric = simd::Metric::kL2;
};

/// Per-rank outcome of the distributed construction.
struct PartitionerResult {
  /// This rank's final partition (rows + global ids after all shuffles).
  data::Dataset partition;
  /// Partition id == this rank's index in the construction communicator.
  PartitionId partition_id = kInvalidPartition;
  /// The assembled routing tree — populated on rank 0 only.
  std::vector<std::byte> serialized_tree;
  /// Wall-clock of the whole distributed construction on this rank.
  double build_seconds = 0.0;
};

/// Run the distributed construction on `comm` (called by every rank of the
/// worker communicator, SPMD). `initial` is this rank's equal share of the
/// dataset; comm.size() must be a power of two.
[[nodiscard]] PartitionerResult build_distributed_vp_tree(
    mpi::Comm& comm, data::Dataset initial, const PartitionerConfig& config);

/// Exact distributed selection of the median of a distributed value set
/// (the paper's "distributed version of the median of medians algorithm":
/// median-of-medians pivots inside an exact distributed quickselect).
/// Collective over `comm`; every rank returns the same median.
[[nodiscard]] float distributed_median(mpi::Comm& comm,
                                       std::vector<float> local_values);

/// Exclusive prefix sum of one value per rank (collective helper).
[[nodiscard]] std::uint64_t exscan_u64(mpi::Comm& comm, std::uint64_t value,
                                       std::uint64_t* total_out = nullptr);

}  // namespace annsim::core
