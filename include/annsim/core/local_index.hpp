#pragma once
/// \file local_index.hpp
/// \brief Pluggable per-partition index — the paper's extensibility point:
/// "Our approach is extensible in that any algorithm can be used for local
/// indexing and searching instead of HNSW" (§VI).
///
/// Three implementations ship: HNSW (the paper's choice), an exact
/// brute-force scan, and an exact VP-tree. Workers build/serialize replicas
/// through this interface, so swapping the local algorithm never touches the
/// distributed machinery.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "annsim/common/thread_pool.hpp"
#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/pq/ivfpq_index.hpp"
#include "annsim/simd/distance.hpp"
#include "annsim/vptree/vp_tree.hpp"

namespace annsim::segment {
class SegmentedIndex;
}

namespace annsim::core {

/// Which algorithm serves local k-NN inside each partition.
enum class LocalIndexKind : std::uint8_t {
  kHnsw = 0,        ///< approximate, the paper's configuration
  kBruteForce = 1,  ///< exact linear scan (turns the engine into exact k-NN
                    ///< when combined with exact_routing)
  kVpTree = 2,      ///< exact metric-tree search
  kIvfPq = 3,       ///< compressed (IVF-PQ): tiny memory, recall ceiling
  kSegmented = 4,   ///< live-mutable: frozen segments + delta + tombstones
};

[[nodiscard]] const char* local_index_kind_name(LocalIndexKind kind) noexcept;

/// Per-partition search index. Implementations reference (not own) the
/// partition's Dataset, which must outlive them.
class LocalIndex {
 public:
  virtual ~LocalIndex() = default;

  /// k-NN over the partition; `ef` is a beam-width hint (HNSW) and ignored
  /// by exact implementations. Returns global ids, sorted by distance.
  [[nodiscard]] virtual std::vector<Neighbor> search(const float* query,
                                                     std::size_t k,
                                                     std::size_t ef) const = 0;

  [[nodiscard]] virtual LocalIndexKind kind() const noexcept = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Serialize the index structure (not the vectors) for replica shipping.
  [[nodiscard]] virtual std::vector<std::byte> to_bytes() const = 0;

  // ---- write plane (live mutability) ----------------------------------
  //
  // Frozen kinds reject writes with a typed Error naming the kind; only
  // kSegmented overrides these. The engine gates its insert()/remove() API
  // on supports_writes() so the failure surfaces at the master, not deep
  // inside a worker thread.

  /// True when insert()/erase()/compact() are implemented.
  [[nodiscard]] virtual bool supports_writes() const noexcept { return false; }

  /// Absorb one vector under `id`. Throws for read-only kinds.
  virtual void insert(std::span<const float> vec, GlobalId id);

  /// Tombstone `id`; returns false when the id is not live here.
  /// Throws for read-only kinds.
  virtual bool erase(GlobalId id);

  /// Re-freeze delta + segments; returns false when a no-op.
  /// Throws for read-only kinds.
  virtual bool compact(ThreadPool* pool = nullptr);

  /// Rows waiting in the mutable delta tier (0 for read-only kinds).
  [[nodiscard]] virtual std::size_t delta_fill() const { return 0; }

  /// The underlying segmented index when kind() == kSegmented, else null —
  /// the hook checkpointing uses to snapshot segment parts incrementally.
  [[nodiscard]] virtual const segment::SegmentedIndex* segmented()
      const noexcept {
    return nullptr;
  }
};

/// Construction parameters shared by every kind.
struct LocalIndexParams {
  LocalIndexKind kind = LocalIndexKind::kHnsw;
  hnsw::HnswParams hnsw;    ///< used when kind == kHnsw or kSegmented
  pq::IvfPqParams ivfpq;    ///< used when kind == kIvfPq (L2 only)
  simd::Metric metric = simd::Metric::kL2;
  /// Delta capacity per segmented replica (kind == kSegmented).
  std::size_t segment_delta_capacity = 1024;
  /// kSegmented only: store frozen segments as SQ8 codes with an exact float
  /// re-rank cache (see segment::SegmentedParams). L2 / InnerProduct only.
  bool quantize_frozen = false;
  /// Fraction of quantized rows kept as exact floats for re-ranking.
  double float_cache_fraction = 0.02;
};

/// Build a fresh index over `data` (runs the build immediately). A pool
/// parallelizes HNSW construction inside the worker, matching the paper's
/// multi-threaded local index builds.
[[nodiscard]] std::unique_ptr<LocalIndex> build_local_index(
    const data::Dataset* data, const LocalIndexParams& params,
    ThreadPool* pool = nullptr);

/// Reconstruct a replica index from `to_bytes()` output.
[[nodiscard]] std::unique_ptr<LocalIndex> local_index_from_bytes(
    std::span<const std::byte> bytes, const data::Dataset* data,
    const LocalIndexParams& params);

}  // namespace annsim::core
