#pragma once
/// \file distance.hpp
/// \brief Vector distance kernels: scalar reference paths plus AVX2/FMA
/// implementations selected at runtime.
///
/// Conventions:
///  * `l2_sq`, `inner_product`, `l1` are raw kernels over `dim` floats.
///  * `DistanceComputer` converts a raw kernel into the *ranking distance*
///    used uniformly across the library (true L2 norm for Metric::kL2, so the
///    VP-tree's triangle-inequality pruning and HNSW's candidate ordering use
///    the same numbers and partial results merge without conversion).
///  * Hot loops (HNSW beam expansion, brute-force scans) work in the
///    *search-space distance* instead: squared L2 for Metric::kL2, identical
///    to the ranking distance otherwise. The mapping is strictly
///    order-preserving, so candidate ordering and tie-breaking are unchanged;
///    `DistanceComputer::to_ranking` converts at the result boundary, paying
///    the `sqrt` once per emitted neighbor instead of once per expansion.
///
/// Dispatch (AVX2+FMA vs scalar) is resolved once per process; setting the
/// environment variable ANNSIM_FORCE_SCALAR=1 before the first kernel call
/// pins the scalar path (reported by `kernel_isa()` as "scalar(forced)") for
/// differential benchmarking.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

namespace annsim::simd {

/// Supported dissimilarity functions.
enum class Metric {
  kL2,            ///< Euclidean distance (a true metric; VP-tree compatible).
  kL1,            ///< Manhattan distance (a true metric; VP-tree compatible).
  kInnerProduct,  ///< 1 - <a,b>; NOT a metric (no VP/KD routing).
  kCosine,        ///< 1 - cos(a,b); NOT a metric.
};

[[nodiscard]] const char* metric_name(Metric m) noexcept;

/// True metrics satisfy the triangle inequality and may be used with the
/// VP-tree partitioner / router.
[[nodiscard]] constexpr bool is_true_metric(Metric m) noexcept {
  return m == Metric::kL2 || m == Metric::kL1;
}

/// Signature shared by every pairwise kernel.
using KernelFn = float (*)(const float*, const float*, std::size_t) noexcept;

// ---- raw kernels (runtime-dispatched: AVX2+FMA when available) ----

/// Squared Euclidean distance.
[[nodiscard]] float l2_sq(const float* a, const float* b, std::size_t dim) noexcept;
/// Dot product <a, b>.
[[nodiscard]] float inner_product(const float* a, const float* b, std::size_t dim) noexcept;
/// Manhattan distance.
[[nodiscard]] float l1(const float* a, const float* b, std::size_t dim) noexcept;
/// Euclidean norm of a vector.
[[nodiscard]] float l2_norm(const float* a, std::size_t dim) noexcept;

/// The dispatched kernels as function pointers, for callers that hoist the
/// dispatch out of their inner loop (one indirect call per distance instead
/// of a call + switch).
[[nodiscard]] KernelFn l2_sq_kernel() noexcept;
[[nodiscard]] KernelFn inner_product_kernel() noexcept;
[[nodiscard]] KernelFn l1_kernel() noexcept;

// ---- one-to-many batched kernels ----
//
// Compute `out[i] = kernel(query, base + row_i * stride)` for i in [0, n),
// where row_i = ids[i], or row_i = i when `ids == nullptr` (contiguous scan).
// Rows are prefetched ahead of the computation, which is what makes these
// faster than a plain loop when the rows are scattered (HNSW beam expansion)
// or streamed (brute-force scan). Results are bit-identical to calling the
// corresponding pairwise kernel per row.

void l2_sq_batch(const float* query, const float* base, std::size_t stride,
                 std::size_t dim, const std::uint32_t* ids, std::size_t n,
                 float* out) noexcept;
void ip_batch(const float* query, const float* base, std::size_t stride,
              std::size_t dim, const std::uint32_t* ids, std::size_t n,
              float* out) noexcept;
void l1_batch(const float* query, const float* base, std::size_t stride,
              std::size_t dim, const std::uint32_t* ids, std::size_t n,
              float* out) noexcept;

// ---- uint8 (SQ8) asymmetric kernels ----
//
// Operate on scalar-quantized rows: each code byte decodes as
// `v[d] = mins[d] + scales[d] * code[d]` (per-dimension min/max affine,
// annsim::quant::SqCodec). The decode is fused into the distance loop, so
// code rows are never materialized as floats — the 4x smaller rows are what
// the memory system streams. The query stays full-float (asymmetric
// distance: only the stored side is quantized).

/// Squared Euclidean distance between a float query and an SQ8 code row.
[[nodiscard]] float l2_sq_u8(const float* query, const std::uint8_t* code,
                             const float* mins, const float* scales,
                             std::size_t dim) noexcept;
/// Dot product <query, decode(code)>.
[[nodiscard]] float ip_u8(const float* query, const std::uint8_t* code,
                          const float* mins, const float* scales,
                          std::size_t dim) noexcept;

// One-to-many batched forms, mirroring the float batch kernels: `stride` is
// in *bytes* (code rows are byte-addressed), `ids` selects rows (nullptr =
// contiguous scan), rows are prefetched ahead. Results are bit-identical to
// calling the corresponding pairwise kernel per row.

void l2_sq_batch_u8(const float* query, const std::uint8_t* base,
                    std::size_t stride, std::size_t dim, const float* mins,
                    const float* scales, const std::uint32_t* ids,
                    std::size_t n, float* out) noexcept;
void ip_batch_u8(const float* query, const std::uint8_t* base,
                 std::size_t stride, std::size_t dim, const float* mins,
                 const float* scales, const std::uint32_t* ids, std::size_t n,
                 float* out) noexcept;

// ---- scalar reference kernels (exported for differential testing) ----

[[nodiscard]] float l2_sq_scalar(const float* a, const float* b, std::size_t dim) noexcept;
[[nodiscard]] float inner_product_scalar(const float* a, const float* b, std::size_t dim) noexcept;
[[nodiscard]] float l1_scalar(const float* a, const float* b, std::size_t dim) noexcept;

void l2_sq_batch_scalar(const float* query, const float* base, std::size_t stride,
                        std::size_t dim, const std::uint32_t* ids, std::size_t n,
                        float* out) noexcept;
void ip_batch_scalar(const float* query, const float* base, std::size_t stride,
                     std::size_t dim, const std::uint32_t* ids, std::size_t n,
                     float* out) noexcept;
void l1_batch_scalar(const float* query, const float* base, std::size_t stride,
                     std::size_t dim, const std::uint32_t* ids, std::size_t n,
                     float* out) noexcept;

[[nodiscard]] float l2_sq_u8_scalar(const float* query, const std::uint8_t* code,
                                    const float* mins, const float* scales,
                                    std::size_t dim) noexcept;
[[nodiscard]] float ip_u8_scalar(const float* query, const std::uint8_t* code,
                                 const float* mins, const float* scales,
                                 std::size_t dim) noexcept;

void l2_sq_batch_u8_scalar(const float* query, const std::uint8_t* base,
                           std::size_t stride, std::size_t dim,
                           const float* mins, const float* scales,
                           const std::uint32_t* ids, std::size_t n,
                           float* out) noexcept;
void ip_batch_u8_scalar(const float* query, const std::uint8_t* base,
                        std::size_t stride, std::size_t dim, const float* mins,
                        const float* scales, const std::uint32_t* ids,
                        std::size_t n, float* out) noexcept;

/// Which instruction set the dispatched kernels use ("avx2+fma", "scalar",
/// or "scalar(forced)" when ANNSIM_FORCE_SCALAR pinned the scalar path).
[[nodiscard]] std::string kernel_isa();

/// True when ANNSIM_FORCE_SCALAR disabled the SIMD paths for this process.
[[nodiscard]] bool scalar_forced() noexcept;

// ---- software prefetch helpers ----

/// Prefetch one cache line for reading.
inline void prefetch_line(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0 /*read*/, 3 /*high locality*/);
#else
  (void)p;
#endif
}

/// Prefetch the leading cache lines of a `dim`-float vector (capped so very
/// high-dimensional rows don't flood the prefetch queue).
inline void prefetch_vector(const float* p, std::size_t dim) noexcept {
  constexpr std::size_t kLine = 64 / sizeof(float);  // floats per cache line
  constexpr std::size_t kMaxLines = 8;               // cap: 512 bytes ahead
  const std::size_t lines = (dim + kLine - 1) / kLine;
  const std::size_t limit = lines < kMaxLines ? lines : kMaxLines;
  for (std::size_t l = 0; l < limit; ++l) prefetch_line(p + l * kLine);
}

/// Prefetch the leading cache lines of a `dim`-byte SQ8 code row (same cap
/// as prefetch_vector; code rows are 4x denser, so fewer lines are touched).
inline void prefetch_code(const std::uint8_t* p, std::size_t dim) noexcept {
  constexpr std::size_t kLine = 64;  // bytes per cache line
  constexpr std::size_t kMaxLines = 8;
  const std::size_t lines = (dim + kLine - 1) / kLine;
  const std::size_t limit = lines < kMaxLines ? lines : kMaxLines;
  for (std::size_t l = 0; l < limit; ++l) prefetch_line(p + l * kLine);
}

/// Computes distances for a fixed metric and dimension. The metric dispatch
/// and the SIMD kernel dispatch are both resolved once at construction into
/// function pointers, so per-call cost is a single indirect call — no switch
/// in the hot loop.
class DistanceComputer {
 public:
  DistanceComputer(Metric metric, std::size_t dim) noexcept;

  /// Ranking distance (library-wide convention; true L2 norm for kL2).
  [[nodiscard]] float operator()(const float* a, const float* b) const noexcept {
    return to_ranking(search_fn_(a, b, dim_, raw_));
  }

  /// Search-space distance: squared L2 for kL2, identical to operator()
  /// otherwise. Strictly order-preserving w.r.t. the ranking distance.
  [[nodiscard]] float search_dist(const float* a, const float* b) const noexcept {
    return search_fn_(a, b, dim_, raw_);
  }

  /// Convert a search-space distance to the ranking convention.
  [[nodiscard]] float to_ranking(float d) const noexcept {
    return metric_ == Metric::kL2 ? std::sqrt(d) : d;
  }

  /// Batched search-space distances: `out[i] = search_dist(query, row ids[i])`
  /// (or row i when ids == nullptr). Rows live at `base + row * stride`.
  /// Bit-identical to calling search_dist per row.
  void search_dist_batch(const float* query, const float* base,
                         std::size_t stride, const std::uint32_t* ids,
                         std::size_t n, float* out) const noexcept;

  [[nodiscard]] Metric metric() const noexcept { return metric_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

 private:
  using SearchFn = float (*)(const float*, const float*, std::size_t,
                             KernelFn) noexcept;

  Metric metric_;
  std::size_t dim_;
  KernelFn raw_;        ///< dispatched primary kernel (ip kernel for cosine)
  SearchFn search_fn_;  ///< metric-specific search-space distance
};

}  // namespace annsim::simd
