#pragma once
/// \file distance.hpp
/// \brief Vector distance kernels: scalar reference paths plus AVX2/FMA
/// implementations selected at runtime.
///
/// Conventions:
///  * `l2_sq`, `inner_product`, `l1` are raw kernels over `dim` floats.
///  * `DistanceComputer` converts a raw kernel into the *ranking distance*
///    used uniformly across the library (true L2 norm for Metric::kL2, so the
///    VP-tree's triangle-inequality pruning and HNSW's candidate ordering use
///    the same numbers and partial results merge without conversion).

#include <cstddef>
#include <string>

namespace annsim::simd {

/// Supported dissimilarity functions.
enum class Metric {
  kL2,            ///< Euclidean distance (a true metric; VP-tree compatible).
  kL1,            ///< Manhattan distance (a true metric; VP-tree compatible).
  kInnerProduct,  ///< 1 - <a,b>; NOT a metric (no VP/KD routing).
  kCosine,        ///< 1 - cos(a,b); NOT a metric.
};

[[nodiscard]] const char* metric_name(Metric m) noexcept;

/// True metrics satisfy the triangle inequality and may be used with the
/// VP-tree partitioner / router.
[[nodiscard]] constexpr bool is_true_metric(Metric m) noexcept {
  return m == Metric::kL2 || m == Metric::kL1;
}

// ---- raw kernels (runtime-dispatched: AVX2+FMA when available) ----

/// Squared Euclidean distance.
[[nodiscard]] float l2_sq(const float* a, const float* b, std::size_t dim) noexcept;
/// Dot product <a, b>.
[[nodiscard]] float inner_product(const float* a, const float* b, std::size_t dim) noexcept;
/// Manhattan distance.
[[nodiscard]] float l1(const float* a, const float* b, std::size_t dim) noexcept;
/// Euclidean norm of a vector.
[[nodiscard]] float l2_norm(const float* a, std::size_t dim) noexcept;

// ---- scalar reference kernels (exported for differential testing) ----

[[nodiscard]] float l2_sq_scalar(const float* a, const float* b, std::size_t dim) noexcept;
[[nodiscard]] float inner_product_scalar(const float* a, const float* b, std::size_t dim) noexcept;
[[nodiscard]] float l1_scalar(const float* a, const float* b, std::size_t dim) noexcept;

/// Which instruction set the dispatched kernels use ("avx2+fma" or "scalar").
[[nodiscard]] std::string kernel_isa();

/// Computes the ranking distance for a fixed metric and dimension.
///
/// Cheap to copy; hot loops should hoist `metric()`/`dim()` decisions by
/// calling through operator() which switches once per call.
class DistanceComputer {
 public:
  DistanceComputer(Metric metric, std::size_t dim) noexcept
      : metric_(metric), dim_(dim) {}

  [[nodiscard]] float operator()(const float* a, const float* b) const noexcept;

  [[nodiscard]] Metric metric() const noexcept { return metric_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

 private:
  Metric metric_;
  std::size_t dim_;
};

}  // namespace annsim::simd
