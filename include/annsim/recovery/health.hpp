#pragma once
/// \file health.hpp
/// \brief Cluster health bookkeeping for the self-healing engine.
///
/// The master tracks per-worker liveness *continuously*: heartbeats on a
/// reliable control-plane tag feed a per-batch liveness view, and the engine
/// folds every batch's outcome into one persistent ClusterHealth. A worker
/// declared dead stays dead across batches until heal() revives it — there
/// is exactly one source of truth, so SearchStats::workers_failed counts
/// each death once instead of re-discovering it every batch.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace annsim::recovery {

enum class WorkerState : std::uint8_t {
  kAlive = 0,  ///< heartbeating; dispatch sends it jobs
  kDead = 1,   ///< declared dead; dispatch skips it until revived
};

/// Lifetime health record of one worker, as observed by the master.
struct WorkerHealth {
  WorkerState state = WorkerState::kAlive;
  std::uint64_t heartbeats = 0;  ///< heartbeats the master has received
  std::uint64_t deaths = 0;      ///< alive -> dead transitions
  std::uint64_t revivals = 0;    ///< dead -> alive transitions (heals)
};

/// Per-worker liveness for the whole cluster, persistent across batches.
struct ClusterHealth {
  std::vector<WorkerHealth> workers;

  void reset(std::size_t n_workers) { workers.assign(n_workers, {}); }

  [[nodiscard]] bool alive(std::size_t w) const {
    return workers[w].state == WorkerState::kAlive;
  }
  [[nodiscard]] std::size_t alive_count() const noexcept;
  [[nodiscard]] bool all_alive() const noexcept;
  /// Indices of dead workers, ascending.
  [[nodiscard]] std::vector<std::size_t> dead_workers() const;
};

/// Outcome of one DistributedAnnEngine::heal() pass.
struct HealReport {
  std::size_t workers_revived = 0;
  std::size_t replicas_restored_from_checkpoint = 0;
  std::size_t replicas_restored_from_peer = 0;
  /// Replicas that could not be restored: no checkpoint on disk and no
  /// surviving peer copy to stream from. The partition stays lost.
  std::size_t replicas_unrecoverable = 0;
  /// Write-ahead-log records replayed past checkpoint watermarks during this
  /// heal (0 when the engine runs without a WAL or nothing trailed).
  std::size_t wal_replayed_records = 0;
  /// Bytes of torn/short/bit-flipped WAL tail truncated while recovering the
  /// revived workers' logs.
  std::size_t wal_truncated_tail_bytes = 0;
  double seconds = 0.0;  ///< wall time of the heal pass

  [[nodiscard]] std::size_t replicas_restored() const noexcept {
    return replicas_restored_from_checkpoint + replicas_restored_from_peer;
  }
  [[nodiscard]] bool fully_healed() const noexcept {
    return replicas_unrecoverable == 0;
  }
};

[[nodiscard]] std::string to_string(const HealReport& r);

}  // namespace annsim::recovery
