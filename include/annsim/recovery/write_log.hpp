#pragma once
/// \file write_log.hpp
/// \brief Per-replica write-ahead log: the durability half of the write plane.
///
/// Every worker owns one WriteLog. The engine's write path appends a frame
/// per insert/delete (stamped with the master-assigned global LSN), then
/// calls commit() once per dispatch round — one fsync covers the whole batch
/// (group commit) — and only acks on `kTagWriteAck` after commit() returns
/// true. The contract that falls out: **ack ⇒ the record is replayable**.
///
/// On-disk format (all little-endian, matching BinaryWriter):
///
///     file   := header frame*
///     header := magic:u32 = 0x414E574C ("ANWL")  version:u32 = 1
///     frame  := crc32c:u32  len:u32  payload[len]
///     payload:= lsn:u64  type:u8  partition:u32  id:u64  n_floats:u32
///               floats[n_floats]
///
/// The CRC covers the payload only, so a torn/short/bit-flipped tail is
/// detected at the first bad frame and recover() truncates there instead of
/// failing the replica — everything before the last valid frame was synced
/// before it was acked, so nothing acked is lost.
///
/// Files are `wal_<first_lsn>.log` inside the log directory, rotated once
/// they exceed `segment_bytes`; gc(watermark) deletes closed files whose
/// records are all covered by a checkpoint's LSN watermark.
///
/// Disk faults are injected through the per-commit `FaultFn` hook (wired to
/// `FaultInjector::disk_fault_at`), never stored: the engine is movable and
/// a captured `this` would dangle. A fired fault corrupts/truncates the
/// in-flight frame deterministically and marks the log crashed; a crashed
/// log refuses further appends until recover() runs (heal does this when it
/// revives the worker).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "annsim/common/types.hpp"
#include "annsim/mpi/fault.hpp"  // DiskFaultKind (enum only, no runtime dep)
#include "annsim/recovery/durable_file.hpp"

namespace annsim::recovery {

inline constexpr std::uint32_t kWalMagic = 0x414E574C;  // "ANWL"
inline constexpr std::uint32_t kWalVersion = 1;

/// CRC32C (Castagnoli, poly 0x82F63B78), software table implementation.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> bytes) noexcept;

enum class WalRecordType : std::uint8_t {
  kInsert = 1,
  kDelete = 2,
  kCompactMark = 3,
};

/// One decoded log record. `vec` is populated for inserts only.
struct WalRecord {
  std::uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  PartitionId partition = kInvalidPartition;
  GlobalId id = kInvalidGlobalId;
  std::vector<float> vec;
};

struct WalOptions {
  /// Rotate to a fresh log file once the active one exceeds this size.
  std::uint64_t segment_bytes = 1u << 20;
  /// One fsync per commit() (true) vs one per frame (false, for comparison).
  bool group_commit = true;
};

class WriteLog {
 public:
  /// Consulted once per in-flight frame during commit(); returning a kind
  /// fires that fault on the frame and kills the log (crashed state).
  using FaultFn =
      std::function<std::optional<mpi::DiskFaultKind>(std::uint64_t lsn)>;

  /// Opens (creating the directory if needed) and immediately recovers:
  /// scans existing files, truncates any invalid tail, and positions the
  /// append cursor after the last valid frame.
  explicit WriteLog(std::string dir, WalOptions options = {});

  WriteLog(const WriteLog&) = delete;
  WriteLog& operator=(const WriteLog&) = delete;

  /// Buffer one record. No bytes reach disk until commit(). Appends on a
  /// crashed log are dropped (the worker is dead; nothing gets acked).
  void append_insert(std::uint64_t lsn, PartitionId partition, GlobalId id,
                     std::span<const float> vec);
  void append_delete(std::uint64_t lsn, PartitionId partition, GlobalId id);
  void append_compact_mark(std::uint64_t lsn, PartitionId partition);

  /// Flush all buffered frames and fsync (one sync for the batch under
  /// group commit). Returns true iff every frame is durable — the caller
  /// must not ack otherwise. `fault` may corrupt an in-flight frame; the
  /// log then enters the crashed state and returns false.
  bool commit(const FaultFn& fault = nullptr);

  /// Re-scan the log after a crash: validate every frame, truncate the
  /// first torn/short/bit-flipped tail, clear the crashed flag. Returns the
  /// number of tail bytes discarded by this pass.
  std::uint64_t recover();

  /// All valid records with lsn > after_lsn, in LSN order.
  [[nodiscard]] std::vector<WalRecord> read_tail(std::uint64_t after_lsn) const;

  /// Delete closed log files fully covered by the checkpoint watermark
  /// (every record's lsn <= watermark). Returns files removed.
  std::size_t gc(std::uint64_t watermark);

  /// Highest LSN made durable by a successful commit (or found by recover).
  [[nodiscard]] std::uint64_t last_synced_lsn() const;

  /// Total tail bytes truncated by recover() over this object's lifetime.
  [[nodiscard]] std::uint64_t truncated_tail_bytes() const;

  /// True after a disk fault fired; cleared by recover().
  [[nodiscard]] bool crashed() const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  struct PendingFrame {
    std::uint64_t lsn = 0;
    std::vector<std::byte> bytes;  // full frame: crc + len + payload
  };

  void buffer_frame(const WalRecord& rec);
  std::uint64_t recover_locked();
  [[nodiscard]] std::vector<std::string> sorted_log_files() const;
  void open_active_for(std::uint64_t first_lsn);

  std::string dir_;
  WalOptions options_;
  mutable std::mutex mu_;
  DurableFile active_;
  std::vector<PendingFrame> pending_;
  std::uint64_t last_synced_lsn_ = 0;
  std::uint64_t truncated_tail_bytes_ = 0;
  bool crashed_ = false;
};

}  // namespace annsim::recovery
