#pragma once
/// \file checkpoint.hpp
/// \brief Durable per-partition snapshots for the self-healing engine.
///
/// LANNS-style deployments assume a segment can be *reloaded* from durable
/// storage instead of rebuilt from raw vectors. The CheckpointStore gives the
/// engine exactly that: one directory per partition holding the packed
/// dataset bytes, the frozen local-index bytes (the wire format replicas
/// already ship over kTagReplica), and a manifest with per-file sizes and
/// checksums.
///
/// Durability contract:
///  * save() is atomic: everything is written into a hidden staging directory
///    and renamed into place in one step, so a crash mid-save leaves either
///    the previous checkpoint or none — never a half-written one.
///  * load() verifies the manifest magic/version, the recorded file sizes,
///    and an FNV-1a checksum of every file. A truncated file, a flipped
///    byte, or a missing manifest each fail with a specific error; a
///    corrupted checkpoint can never deserialize into a silently wrong
///    index.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace annsim::recovery {

/// What a checkpointed partition is, independent of its payload bytes.
struct CheckpointMeta {
  std::uint32_t partition = 0;  ///< PartitionId this snapshot belongs to
  std::uint64_t dim = 0;        ///< vector dimensionality
  std::uint64_t count = 0;      ///< number of vectors in the partition
  std::uint8_t index_kind = 0;  ///< LocalIndexKind the index bytes decode as
};

/// FNV-1a 64-bit over a byte span — dependency-free, stable across platforms.
[[nodiscard]] std::uint64_t checksum64(std::span<const std::byte> bytes) noexcept;

/// Filesystem-backed store of partition snapshots under one root directory.
/// Layout: `<dir>/partition_<pid>/{manifest.bin, data.bin, index.bin}`.
class CheckpointStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.
  explicit CheckpointStore(std::string dir);

  /// Atomically write (or replace) the snapshot of one partition.
  void save(const CheckpointMeta& meta, std::span<const std::byte> data_bytes,
            std::span<const std::byte> index_bytes) const;

  /// Does a committed snapshot exist for `partition`?
  [[nodiscard]] bool has(std::uint32_t partition) const;

  struct LoadedPartition {
    CheckpointMeta meta;
    std::vector<std::byte> data_bytes;   ///< pack_dataset() wire bytes
    std::vector<std::byte> index_bytes;  ///< LocalIndex::to_bytes() wire bytes
  };

  /// Load and verify one partition; throws annsim::Error naming the failure
  /// (missing manifest / truncated file / checksum mismatch).
  [[nodiscard]] LoadedPartition load(std::uint32_t partition) const;

  /// Partitions with a committed snapshot, ascending.
  [[nodiscard]] std::vector<std::uint32_t> partitions() const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  std::string dir_;
};

}  // namespace annsim::recovery
