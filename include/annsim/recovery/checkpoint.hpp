#pragma once
/// \file checkpoint.hpp
/// \brief Durable per-partition snapshots for the self-healing engine.
///
/// LANNS-style deployments assume a segment can be *reloaded* from durable
/// storage instead of rebuilt from raw vectors. The CheckpointStore gives the
/// engine exactly that: one directory per partition holding the packed
/// dataset bytes, the frozen local-index bytes (the wire format replicas
/// already ship over kTagReplica), and a manifest with per-file sizes and
/// checksums.
///
/// Durability contract:
///  * save() is atomic: everything is written into a hidden staging directory
///    and renamed into place in one step, so a crash mid-save leaves either
///    the previous checkpoint or none — never a half-written one.
///  * load() verifies the manifest magic/version, the recorded file sizes,
///    and an FNV-1a checksum of every file. A truncated file, a flipped
///    byte, or a missing manifest each fail with a specific error; a
///    corrupted checkpoint can never deserialize into a silently wrong
///    index.
///
/// Segmented partitions (live mutability) checkpoint *incrementally* through
/// save_segmented(): each frozen segment persists once as an immutable
/// `seg_<id>.bin` (segment ids are never reused, so id equality implies byte
/// equality and the file is skipped when already present), while the small
/// mutable delta rewrites every round as a generation-versioned
/// `delta_<g>.bin`. The manifest rename is the commit point: a crash between
/// payload writes and the manifest rename leaves the previous manifest
/// referencing the previous generation — still fully intact. Stale delta
/// generations and segments merged away by compaction are garbage-collected
/// after the commit.
///
/// Quantized partitions (quantize_frozen) ride the same machinery unchanged:
/// a quantized segment's blob is its SQ8 codes + codebook + graph + cached
/// float rows (~4x smaller than the float form), the header is version 2,
/// and the `seg_<id>.bin` immutability contract holds exactly as above — a
/// segment is quantized at freeze time and never rewritten after.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace annsim::recovery {

/// What a checkpointed partition is, independent of its payload bytes.
struct CheckpointMeta {
  std::uint32_t partition = 0;  ///< PartitionId this snapshot belongs to
  std::uint64_t dim = 0;        ///< vector dimensionality
  std::uint64_t count = 0;      ///< number of vectors in the partition
  std::uint8_t index_kind = 0;  ///< LocalIndexKind the index bytes decode as
};

/// FNV-1a 64-bit over a byte span — dependency-free, stable across platforms.
[[nodiscard]] std::uint64_t checksum64(std::span<const std::byte> bytes) noexcept;

/// Filesystem-backed store of partition snapshots under one root directory.
/// Layout: `<dir>/partition_<pid>/{manifest.bin, data.bin, index.bin}`.
class CheckpointStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`, sweeping any
  /// hidden staging directories / `.tmp` siblings a crash mid-commit left
  /// behind — they were never part of a committed snapshot, and letting them
  /// accumulate would shadow GC forever.
  explicit CheckpointStore(std::string dir);

  /// Atomically write (or replace) the snapshot of one partition.
  void save(const CheckpointMeta& meta, std::span<const std::byte> data_bytes,
            std::span<const std::byte> index_bytes) const;

  /// What an incremental save actually wrote — the point of the segmented
  /// manifest is that `segments_skipped` dominates once the index stabilizes.
  struct SaveReport {
    std::size_t segments_written = 0;
    std::size_t segments_skipped = 0;  ///< already durable; not re-written
  };

  /// Incremental snapshot of a segmented partition from its
  /// SegmentedIndex::snapshot_parts() pieces: immutable `seg_<id>.bin` files
  /// (skipped when already present), a fresh `delta_<g>.bin` generation, and
  /// an atomically renamed manifest as the commit. load() reassembles the
  /// byte-identical full image. Mixing save() and save_segmented() on the
  /// same partition is fine — each commit fully replaces the manifest.
  ///
  /// `wal_watermark` is the highest write-ahead-log LSN whose effects this
  /// snapshot is guaranteed to contain. Recovery replays only WAL records
  /// with lsn > watermark, and the engine GCs log files fully covered by it
  /// once the manifest rename commits.
  SaveReport save_segmented(
      const CheckpointMeta& meta, std::span<const std::byte> header,
      std::span<const std::pair<std::uint64_t, std::vector<std::byte>>>
          segments,
      std::span<const std::byte> delta, std::uint64_t wal_watermark = 0) const;

  /// Does a committed snapshot exist for `partition`?
  [[nodiscard]] bool has(std::uint32_t partition) const;

  struct LoadedPartition {
    CheckpointMeta meta;
    /// pack_dataset() wire bytes; empty for segmented snapshots (the index
    /// image owns its vectors — unpack_dataset({}) yields the empty husk).
    std::vector<std::byte> data_bytes;
    std::vector<std::byte> index_bytes;  ///< LocalIndex::to_bytes() wire bytes
    /// Highest WAL LSN already reflected in this snapshot (0 when the
    /// snapshot predates the WAL or was written without one).
    std::uint64_t wal_watermark = 0;
  };

  /// Load and verify one partition; throws annsim::Error naming the failure
  /// (missing manifest / truncated file / checksum mismatch). Transparent
  /// across formats: a segmented manifest reassembles the parts into the
  /// exact bytes SegmentedIndex::to_bytes() would have produced.
  [[nodiscard]] LoadedPartition load(std::uint32_t partition) const;

  /// Partitions with a committed snapshot, ascending.
  [[nodiscard]] std::vector<std::uint32_t> partitions() const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  std::string dir_;
};

}  // namespace annsim::recovery
