#pragma once
/// \file durable_file.hpp
/// \brief The recovery plane's only way to put bytes on disk.
///
/// Every durable artifact — checkpoint payloads, manifests, write-ahead log
/// segments — goes through this wrapper, which owns the three primitives a
/// crash-consistent store needs and nothing else:
///
///  * append(): buffered writes to an append-only file descriptor,
///  * sync(): flush + fsync, the moment bytes become crash-durable (an
///    acked write may only be acked after its log frames synced),
///  * write_atomic(): whole-file replace via hidden-sibling + fsync +
///    rename, so readers observe either the old bytes or the new bytes,
///    never a prefix.
///
/// A repo lint rule (`raw-write-in-recovery`) bans raw std::ofstream/fopen
/// in src/recovery outside this file: a plain ofstream write is buffered in
/// user space and torn on crash, which is exactly the failure class the
/// recovery plane exists to rule out. POSIX descriptors are used directly —
/// the simulated cluster runs on Linux, and fsync semantics are the point.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace annsim::recovery {

/// Append-only durable file handle. Move-only; close() (or destruction)
/// releases the descriptor without syncing — callers own the sync points.
class DurableFile {
 public:
  DurableFile() = default;
  ~DurableFile();

  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;

  /// Open `path` for appending, creating it (and nothing else — parent
  /// directories are the caller's job) when absent.
  static DurableFile open_append(const std::string& path);

  /// Append bytes at the end of the file. Throws annsim::Error on a short
  /// write (disk full) — durability code must never silently lose a suffix.
  void append(std::span<const std::byte> bytes);

  /// Make everything appended so far crash-durable (fsync). The WAL's group
  /// commit batches many append() calls behind one sync() per dispatch round.
  void sync();

  /// Current file size in bytes (appends included).
  [[nodiscard]] std::uint64_t size() const;

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Atomic whole-file replace: write a hidden `.name.tmp` sibling, fsync
  /// it, rename over `path`, then fsync the parent directory so the rename
  /// itself survives a crash. Readers of `path` never observe a torn file.
  static void write_atomic(const std::string& path,
                           std::span<const std::byte> bytes);

  /// fsync a directory so a just-created/renamed/removed entry is durable.
  static void sync_dir(const std::string& dir);

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace annsim::recovery
