#pragma once
/// \file construction_model.hpp
/// \brief Analytic performance model of the distributed index construction
/// (Table II): VP-tree partitioning (Algorithms 1-2) plus local HNSW builds.
///
/// Unlike the search DES — which replays real routing decisions — the
/// construction estimate is a closed-form model assembled from the same
/// calibrated kernel costs. Per recursion level (log2 P levels): distributed
/// vantage selection (local scoring + candidate gather + root re-scoring +
/// broadcast), a distance pass, the distributed median (O(log n) rounds of
/// small collectives over a geometrically-shrinking local set), and the
/// MPI_Alltoallv shuffle. On top sit the data-load and job-startup terms
/// which, on real systems, dominate the non-HNSW share at high core counts
/// (the paper's "Total - HNSW" grows from 3.9 to 10.4 minutes).

#include <cstddef>

#include "annsim/cluster/calibration.hpp"
#include "annsim/cluster/machine_model.hpp"

namespace annsim::des {

struct ConstructionModelConfig {
  std::size_t n_points = 1'000'000'000;  ///< dataset size (paper: 1B)
  std::size_t dim = 128;
  std::size_t n_cores = 256;             ///< P (power of two)
  std::size_t vantage_candidates = 100;
  std::size_t vantage_sample = 256;

  cluster::MachineModel machine;
  cluster::CalibratedCosts costs;

  /// Parallel-filesystem bandwidth available per node (bytes/s).
  double io_bandwidth_per_node = 4.0e9;
  /// Serialized job-launch / wire-up cost per rank at the master (seconds);
  /// the term that grows linearly with P on real machines. Kept small enough
  /// that the per-doubling HNSW gain always outweighs it (Table II's total
  /// stays monotone decreasing while the non-HNSW share grows).
  double startup_per_rank = 0.006;
  /// Fixed overhead (scheduler, binary load, MPI_Init) in seconds.
  double fixed_overhead = 120.0;
};

struct ConstructionEstimate {
  double total_seconds = 0.0;
  double hnsw_seconds = 0.0;      ///< the paper's "HNSW Construction" column
  double vp_tree_seconds = 0.0;
  double load_seconds = 0.0;
  double startup_seconds = 0.0;
};

[[nodiscard]] ConstructionEstimate estimate_construction(
    const ConstructionModelConfig& config);

}  // namespace annsim::des
