#pragma once
/// \file search_sim.hpp
/// \brief Discrete-event simulation of the master-worker batched search
/// (Algorithms 3 & 5) at cluster scale (256-8192 cores).
///
/// The simulator replays the *identical* dispatch decisions the real engine
/// makes — per-query partition plans from the real VP-tree router and the
/// same workgroup round-robin — while job durations and message times come
/// from the calibrated cost model and the machine model. Worker nodes are
/// multi-server FIFO queues (any core of a node can serve a job targeted at
/// the node, the paper's intra-node dynamic load balancing); the master is a
/// serial resource for routing, dispatch, and (in two-sided mode) merging.

#include <cstdint>
#include <vector>

#include "annsim/cluster/machine_model.hpp"
#include "annsim/common/types.hpp"

namespace annsim::des {

struct SearchSimConfig {
  std::size_t n_cores = 256;       ///< P worker cores (= partitions)
  std::size_t replication = 1;     ///< Algorithm 5's r (1 = baseline)
  bool one_sided = true;           ///< RMA result return vs two-sided sends
  std::size_t k = 10;
  std::size_t dim = 128;
  double route_seconds = 1.0e-6;   ///< master: F(q) per query
  /// Master-side cost of receiving and folding one worker result in
  /// two-sided mode (MPI matching + copy + k-way merge) — the serialized
  /// path whose removal motivates the one-sided optimization (§IV-C1).
  double merge_seconds = 5.0e-6;
  cluster::MachineModel machine;

  /// Rank-to-node placement. Cyclic (round-robin) is the default: the
  /// paper's replication optimization targets load imbalance *across*
  /// compute nodes (§IV-C2) and its workgroups are consecutive core ids —
  /// they can only spread load across nodes if consecutive ranks live on
  /// different nodes, which is exactly what cyclic placement provides.
  /// Block placement packs ranks node by node and makes Algorithm 5 nearly
  /// a no-op (intra-node dynamic assignment already balances a node).
  bool cyclic_rank_mapping = true;
};

struct SearchSimResult {
  double makespan_seconds = 0.0;       ///< total query time (the paper's metric)
  double master_busy_seconds = 0.0;    ///< routing + dispatch + merging
  double compute_seconds = 0.0;        ///< sum of local-search durations
  double comm_cpu_seconds = 0.0;       ///< endpoint CPU spent on messaging
  double wire_seconds = 0.0;           ///< total in-flight time (overlapped)
  std::uint64_t total_jobs = 0;
  std::vector<std::uint64_t> jobs_per_core;  ///< Fig 4(b) distribution
  std::vector<double> busy_per_core;
  /// Per-query completion time (all of F(q) merged), seconds from batch
  /// start — the latency view behind the throughput numbers.
  std::vector<double> query_latency;

  // Fig 5 breakdown, fractions of (P+1) * makespan.
  double computation_fraction = 0.0;
  double communication_fraction = 0.0;
  double idle_fraction = 0.0;
};

/// `plans[q]` lists the partitions F(q) routed for query q (partition id ==
/// primary core id). `partition_cost[d]` is the local-search duration on
/// partition d (from CalibratedCosts at the modeled partition size).
[[nodiscard]] SearchSimResult simulate_search(
    const SearchSimConfig& config,
    const std::vector<std::vector<PartitionId>>& plans,
    const std::vector<double>& partition_cost);

}  // namespace annsim::des
