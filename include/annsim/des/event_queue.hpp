#pragma once
/// \file event_queue.hpp
/// \brief Minimal discrete-event engine: a time-ordered queue of closures.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace annsim::des {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute simulated time `when` (seconds).
  void schedule(double when, Handler fn) {
    events_.push(Event{when, seq_++, std::move(fn)});
  }

  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(double delay, Handler fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Current simulated time.
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Process events in time order until the queue drains.
  void run() {
    while (!events_.empty()) {
      Event e = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = e.when;
      e.fn();
    }
  }

 private:
  struct Event {
    double when;
    std::uint64_t seq;  ///< FIFO tie-break for simultaneous events
    Handler fn;
    friend bool operator<(const Event& a, const Event& b) noexcept {
      // priority_queue is a max-heap; invert for earliest-first.
      return a.when > b.when || (a.when == b.when && a.seq > b.seq);
    }
  };

  std::priority_queue<Event> events_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace annsim::des
