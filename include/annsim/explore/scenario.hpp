#pragma once
/// \file scenario.hpp
/// \brief Engine scenarios under a controlled schedule, with durability and
///        consistency oracles (the annsim::explore test harness).
///
/// One scenario = build a small engine free-running, run a perturbed op mix
/// (writes / queries / compaction / a crash) with every runtime under the
/// schedule controller, then disarm and interrogate the survivors:
///
///  * durability  — every row the engine acked is found after heal(); every
///    acked delete stays dead (no tombstone resurrection);
///  * WAL consistency — all replicas of one logical row logged the same LSN,
///    a row's delete LSN is above its insert LSN, and each log's synced
///    watermark covers everything it holds;
///  * view/coverage — after heal() no partition is under-replicated and the
///    fault-free query plan is fully covered;
///  * read stability (query mix) — controlled top-k is bit-identical to the
///    free-running fault-free baseline;
///  * usage cleanliness — annsim::check stays clean across every runtime.
///
/// Scenarios are schedule-deterministic by construction (seeded datasets,
/// single-thread worker teams, no wall-clock waits), which is what lets
/// DfsDriver enumerate them exhaustively and replay tokens reproduce a
/// failure byte for byte.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "annsim/explore/explore.hpp"

namespace annsim::explore {

/// Which op mix the controlled section runs.
enum class Mix {
  kWrite,    ///< two insert rounds + a delete round
  kQuery,    ///< one search batch (compared against a free-running baseline)
  kCompact,  ///< an insert round, then compact()
  kHeal,     ///< insert rounds with a real mid-round kill, then heal()
  kMixed,    ///< insert + search + delete + compact
};

[[nodiscard]] const char* mix_name(Mix mix);
[[nodiscard]] std::optional<Mix> parse_mix(const std::string& name);

struct ScenarioConfig {
  std::size_t workers = 2;
  std::size_t replication = 2;
  Mix mix = Mix::kWrite;
  /// Dataset/engine seed (not the schedule seed — that lives in the strategy).
  std::uint64_t seed = 1;
  std::size_t base_rows = 48;
  std::size_t write_rows = 3;
  std::size_t queries = 2;
  std::size_t k = 3;
  /// Run every engine runtime under annsim::check and require a clean report.
  bool mpi_check = true;
  /// Arm the fault injector with a never-firing kill so the write plane takes
  /// its recv_for paths — timeouts become schedulable choice points. The heal
  /// mix always arms a real kill on the last worker regardless.
  bool arm_faults = true;
  /// Scratch root for this run's WAL + checkpoint trees. Wiped and recreated
  /// on entry so re-executions (DFS) start from identical disk state.
  std::string scratch_dir;
};

struct ScenarioResult {
  /// Schedule trace plus the first failure (schedule deadlock, engine throw,
  /// or oracle violation — `outcome.error` explains which).
  RunOutcome outcome;
  /// Oracle assertions that failed (all folded into outcome.error too).
  std::size_t oracle_failures = 0;

  [[nodiscard]] bool ok() const { return outcome.ok(); }
};

/// Run one controlled scenario. The controller must be disarmed on entry;
/// it is armed for the perturbed section only (build and oracles free-run)
/// and disarmed again before returning, even on failure.
ScenarioResult run_scenario(const ScenarioConfig& cfg,
                            const std::shared_ptr<ScheduleController>& ctrl,
                            std::shared_ptr<ScheduleStrategy> strategy,
                            ScheduleOptions opts = {});

}  // namespace annsim::explore
