#pragma once
/// \file explore.hpp
/// \brief Schedule-exploration strategies, replay tokens, and the exhaustive
///        DFS driver (annsim::explore).
///
/// Sits on top of mpi::ScheduleController (mpi/schedule.hpp). Three ways to
/// walk the schedule space:
///
///  * RandomStrategy — seeded uniform pick at every branch point; hundreds of
///    seeds sample the space cheaply (the CI sweep).
///  * PctStrategy — PCT-style priority scheduling: each channel gets a random
///    priority, the highest-priority eligible event always wins, and at `d-1`
///    random change points the running channel's priority is demoted. Finds
///    bugs of ordering depth <= d with known probability.
///  * DfsDriver — exhaustive enumeration by repeated re-execution with
///    sleep-set pruning (DPOR-lite): commuting event pairs (different
///    destination ranks) are never explored in both orders. Tractable for
///    2-partition/2-replica configs; the CI gate runs it to completion.
///
/// Every controlled run serializes to a compact replay token
/// (`X1.<strategy>.<seed>.<depth>.<choices>.<digest>`); feeding the token back
/// replays the exact decision sequence and the digest proves the re-executed
/// event sequence is identical, byte for byte.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "annsim/common/rng.hpp"
#include "annsim/mpi/schedule.hpp"

namespace annsim::explore {

using mpi::ChoiceEvent;
using mpi::ChoiceKind;
using mpi::ScheduleController;
using mpi::ScheduleOptions;
using mpi::ScheduleStrategy;
using mpi::ScheduleTrace;

/// Seeded uniform random walk over branch points.
class RandomStrategy final : public ScheduleStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed);
  std::size_t pick(const std::vector<ChoiceEvent>& eligible) override;

 private:
  Rng rng_;
};

/// PCT-style priority schedules. `depth` is the PCT `d` parameter: the number
/// of priority change points is `d - 1`, drawn uniformly over the first
/// `expected_steps` branch decisions. `depth <= 1` degenerates to a pure
/// priority schedule (no change points).
class PctStrategy final : public ScheduleStrategy {
 public:
  PctStrategy(std::uint64_t seed, int depth, std::uint64_t expected_steps = 512);
  std::size_t pick(const std::vector<ChoiceEvent>& eligible) override;

 private:
  Rng rng_;
  std::uint64_t decisions_ = 0;
  std::vector<std::uint64_t> change_points_;  ///< sorted decision indices
  std::size_t next_change_ = 0;
  std::int64_t demote_counter_ = -1;  ///< demoted priorities count downward
  std::vector<std::pair<std::uint64_t, std::int64_t>> priorities_;  ///< key -> prio
};

/// Replays a recorded decision sequence. In strict mode any divergence — a
/// choice index out of range, or more branch points than were recorded —
/// throws annsim::Error, because a faithful replay must re-encounter exactly
/// the recorded branch points. Non-strict falls back to index 0.
class ForcedStrategy final : public ScheduleStrategy {
 public:
  explicit ForcedStrategy(std::vector<std::uint8_t> choices, bool strict = true);
  std::size_t pick(const std::vector<ChoiceEvent>& eligible) override;

 private:
  std::vector<std::uint8_t> choices_;
  std::size_t pos_ = 0;
  bool strict_;
};

// --------------------------------------------------------- replay tokens ---

/// Decoded form of a replay token.
struct ReplayToken {
  char strategy = 'r';  ///< 'r' random, 'p' pct, 'd' dfs, 'f' forced
  std::uint64_t seed = 0;
  int depth = 0;  ///< PCT depth (0 for other strategies)
  std::vector<std::uint8_t> choices;
  std::uint64_t digest = 0;  ///< expected event-sequence digest
};

/// `X1.<strategy>.<seed:hex>.<depth>.<choices:2-hex-per-entry>.<digest:hex>`.
[[nodiscard]] std::string encode_replay_token(char strategy, std::uint64_t seed,
                                              int depth,
                                              const ScheduleTrace& trace);
/// std::nullopt on any malformed token.
[[nodiscard]] std::optional<ReplayToken> decode_replay_token(
    const std::string& token);

// ------------------------------------------------------ controlled runs ---

/// One controlled execution: arm, run `body`, disarm. Exceptions out of
/// `body` (oracle failures, schedule deadlocks unwinding rank threads) are
/// captured into `error`, never propagated — the caller decides whether a
/// failing schedule is fatal after printing its replay token.
struct RunOutcome {
  ScheduleTrace trace;
  std::string error;  ///< empty <=> the schedule ran clean
  [[nodiscard]] bool ok() const { return error.empty(); }
};

RunOutcome run_controlled(ScheduleController& ctrl,
                          std::shared_ptr<ScheduleStrategy> strategy,
                          const std::function<void()>& body,
                          ScheduleOptions opts = {});

// ------------------------------------------------- exhaustive enumeration ---

/// True when the two events commute: executing them in either order reaches
/// the same state, so exploring both orders is redundant. Deliveries and
/// timeouts conflict only on the same destination rank (they race for that
/// rank's mailbox/wait); RMA ops conflict only on the same target window
/// rank; RMA never conflicts with message traffic (controlled threads park
/// before every window op, so a run slice never touches both planes).
[[nodiscard]] bool independent(const ChoiceEvent& a, const ChoiceEvent& b);

/// Exhaustive schedule enumeration by repeated re-execution with sleep-set
/// pruning. Usage:
///
///   DfsDriver dfs(max_schedules);
///   do {
///     auto out = run_controlled(ctrl, dfs.strategy(), body);
///     // ... check oracles, record out.trace ...
///   } while (dfs.advance());
///
/// Each advance() backtracks to the deepest branch point with an unexplored,
/// non-slept alternative. The driver verifies on every replayed prefix that
/// the eligible sets match the previous execution — a mismatch means the
/// program under test is not schedule-deterministic, and throws.
class DfsDriver {
 public:
  explicit DfsDriver(std::size_t max_schedules = 100000);

  /// Strategy for the next execution (resets the replay cursor).
  [[nodiscard]] std::shared_ptr<ScheduleStrategy> strategy();
  /// Record the just-finished execution; true while schedules remain.
  bool advance();

  [[nodiscard]] std::size_t schedules_run() const { return schedules_; }
  /// True when max_schedules stopped the walk before the space was exhausted.
  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  friend class DfsStrategy;
  std::size_t decide(const std::vector<ChoiceEvent>& eligible);

  struct Node {
    std::vector<ChoiceEvent> eligible;
    std::vector<ChoiceEvent> sleep;  ///< initial sleep set + explored siblings
    std::size_t chosen = 0;
    bool exhausted = false;  ///< every alternative slept at creation
  };
  std::vector<Node> path_;
  std::size_t depth_ = 0;
  std::size_t schedules_ = 0;
  std::size_t max_schedules_;
  bool truncated_ = false;
};

}  // namespace annsim::explore
