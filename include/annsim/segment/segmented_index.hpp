#pragma once
/// \file segmented_index.hpp
/// \brief Live-mutable per-partition index: frozen segments + mutable delta
/// + tombstones (the ROADMAP's "Live mutability at serving scale").
///
/// The engine's FlatGraph HNSW is read-optimized but write-hostile: freezing
/// compacts the linked graph into a CSR slab and rejects further inserts. A
/// SegmentedIndex keeps serving from that frozen form while still absorbing a
/// write stream, LSM-style:
///
///  * one or more frozen *segments* — immutable (Dataset, HnswIndex) pairs —
///    serve the bulk of every search through the zero-lock flat-graph path;
///  * a small mutable *delta* HNSW absorbs inserts. Its Dataset is allocated
///    at full capacity up front so row storage never moves, which is what
///    makes the mutable-graph concurrent insert+search path safe to reuse;
///  * deletes are *tombstones*: a global-id set consulted at result emission,
///    in the same spirit as the masked-slot merge protocol (a deleted id must
///    never resurrect, even when replicas disagree mid-failover).
///
/// Searches snapshot an immutable View (segments + delta + tombstones)
/// published via shared_ptr swap, overfetch by the tombstone count, merge all
/// sources through the pooled TopK path, and filter deleted ids on the way
/// out. Background *compaction* re-freezes segments + delta - tombstones into
/// a single fresh segment and hot-swaps the View; in-flight readers finish on
/// the old View (whose tombstones travel with it), new readers see the new
/// one. Readers are never blocked; writers stall only for the duration of a
/// compaction.
///
/// Thread-safety contract: any number of concurrent search() calls, plus any
/// number of concurrent insert()/erase()/compact() calls (writers serialize
/// internally). snapshot_parts()/to_bytes() serialize against writers too, so
/// checkpoints are consistent cuts.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "annsim/common/thread_pool.hpp"
#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/quant/sq_segment.hpp"

namespace annsim::segment {

struct SegmentedParams {
  /// Parameters for both the frozen segment graphs and the mutable delta
  /// (including the metric).
  hnsw::HnswParams hnsw;
  /// Rows the delta absorbs before an insert forces a synchronous
  /// compaction. Storage is pre-allocated, so this is also the delta's
  /// fixed memory footprint.
  std::size_t delta_capacity = 1024;
  /// Store frozen segments as SQ8 code rows (quant::SqSegment) instead of
  /// full floats. The delta always stays full-float — quantization happens
  /// at freeze time, when the codec can be trained on the exact rows it will
  /// encode. Only kL2 / kInnerProduct metrics are supported when set.
  bool quantize_frozen = false;
  /// Fraction of each quantized segment's rows kept as exact floats for
  /// re-ranking (see quant::SqSegmentParams::float_cache_fraction).
  double float_cache_fraction = 0.02;
};

struct SegmentedStats {
  std::size_t n_segments = 0;
  std::size_t segment_rows = 0;  ///< frozen rows incl. tombstoned ones
  std::size_t delta_used = 0;
  std::size_t delta_capacity = 0;
  std::size_t tombstones = 0;
  std::uint64_t compactions = 0;
  // Quantized-tier diagnostics (all zero when quantize_frozen is off).
  std::size_t quant_rows = 0;            ///< rows stored as SQ8 codes
  std::size_t quant_resident_bytes = 0;  ///< codes + re-rank cache + codebook
  std::size_t quant_float_bytes = 0;     ///< what full floats would occupy
  std::size_t quant_cached_rows = 0;     ///< rows with an exact float copy
  std::uint64_t rerank_exact = 0;        ///< candidates re-scored exactly
  std::uint64_t rerank_coded = 0;        ///< candidates kept at SQ8 distance
};

class SegmentedIndex {
 public:
  /// Build from an initial corpus: `base` becomes frozen segment 0 (built
  /// with `pool` if supplied), plus an empty delta. An empty `base` yields a
  /// delta-only index that exists purely to absorb writes.
  SegmentedIndex(data::Dataset base, SegmentedParams params,
                 ThreadPool* pool = nullptr);

  SegmentedIndex(const SegmentedIndex&) = delete;
  SegmentedIndex& operator=(const SegmentedIndex&) = delete;

  /// k-NN over segments + delta, tombstones filtered, sorted by distance,
  /// ids deduplicated. Safe concurrently with writers and compaction.
  [[nodiscard]] std::vector<Neighbor> search(const float* query, std::size_t k,
                                             std::size_t ef = 0) const;

  /// Insert one vector under a caller-chosen global id. The id must not be
  /// live; re-inserting a previously erased id first purges its old physical
  /// copies via a synchronous compaction. A full delta also compacts
  /// synchronously before the row is absorbed.
  void insert(std::span<const float> vec, GlobalId id);

  /// Tombstone `id`. Returns false when the id is not live (unknown or
  /// already erased). The physical row lingers until the next compaction but
  /// is invisible to every subsequent search.
  bool erase(GlobalId id);

  /// Tiered compaction, LSM-style, so the common case stays O(delta) and
  /// never stalls serving behind a full index rebuild:
  ///  * minor (default): freeze the delta's live rows into one new small
  ///    segment and swap in a fresh empty delta; existing segments are
  ///    untouched and tombstones keep filtering them.
  ///  * major (escalated when the segment count exceeds kMajorFanout or
  ///    tombstones reach a quarter of the frozen rows): merge segments +
  ///    delta - tombstones into a single fresh segment, purging the
  ///    tombstone set.
  /// Returns false when there was nothing to do (empty delta, no pressure).
  /// Readers are never blocked; concurrent writers wait for the swap.
  bool compact(ThreadPool* pool = nullptr);

  /// Segment count (including the one a pending delta would add) above
  /// which compact() escalates from a minor to a major merge.
  static constexpr std::size_t kMajorFanout = 8;

  /// Live points (inserted and not erased).
  [[nodiscard]] std::size_t size() const;
  /// Rows currently in the delta (reset to 0 by compaction).
  [[nodiscard]] std::size_t delta_fill() const;
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const SegmentedParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] SegmentedStats stats() const;
  [[nodiscard]] bool contains(GlobalId id) const;

  /// Serialized full image, concatenation of snapshot_parts() in order:
  /// header | segments | delta. from_bytes() round-trips it.
  [[nodiscard]] std::vector<std::byte> to_bytes() const;

  /// The same image split for incremental checkpointing: frozen segment
  /// blobs are content-stable between compactions (keyed by segment id), so
  /// a checkpoint store can skip re-writing segments it already holds and
  /// persist only the small delta blob.
  struct SnapshotParts {
    std::vector<std::byte> header;
    /// (segment id, serialized segment) — ids strictly increase over the
    /// index's lifetime and never get reused, so id equality implies byte
    /// equality.
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> segments;
    std::vector<std::byte> delta;  ///< delta rows + tombstones
  };
  [[nodiscard]] SnapshotParts snapshot_parts() const;

  static std::unique_ptr<SegmentedIndex> from_bytes(
      std::span<const std::byte> bytes);
  /// Reassemble from individually stored parts (checkpoint restore).
  static std::unique_ptr<SegmentedIndex> from_parts(
      std::span<const std::byte> header,
      std::span<const std::pair<std::uint64_t, std::vector<std::byte>>>
          segments,
      std::span<const std::byte> delta);

 private:
  /// Immutable frozen segment: either a (Dataset, frozen HnswIndex) pair
  /// (full-float tier; unique_ptr keeps the Dataset's address stable for the
  /// index that references it) or a quant::SqSegment (SQ8 tier: code rows +
  /// the same frozen topology + exact re-rank cache), per quantize_frozen.
  struct Segment {
    std::uint64_t id = 0;
    std::unique_ptr<data::Dataset> data;
    std::unique_ptr<hnsw::HnswIndex> index;
    std::unique_ptr<quant::SqSegment> quant;
    /// Serialized form, filled once on first snapshot: the segment is
    /// immutable, so the bytes never go stale, and per-round incremental
    /// checkpoints stop paying O(index) re-serialization.
    mutable std::once_flag wire_once;
    mutable std::vector<std::byte> wire;

    [[nodiscard]] std::size_t rows() const noexcept {
      return quant ? quant->size() : data->size();
    }
    [[nodiscard]] std::span<const GlobalId> row_ids() const noexcept {
      return quant ? quant->ids() : data->ids();
    }
  };

  /// Mutable write-absorbing tier. `data` is pre-sized to delta_capacity so
  /// rows never move; `used` publishes how many rows are valid.
  struct Delta {
    std::unique_ptr<data::Dataset> data;
    std::unique_ptr<hnsw::HnswIndex> index;
    std::atomic<std::size_t> used{0};
  };

  /// What a search sees: an atomic snapshot of segments, delta, and the
  /// tombstones that apply to *these* physical rows. Compaction publishes a
  /// fresh View; the old one (with its tombstones) stays alive for in-flight
  /// readers via shared_ptr.
  struct View {
    std::vector<std::shared_ptr<const Segment>> segments;
    std::shared_ptr<Delta> delta;
    std::shared_ptr<const std::unordered_set<GlobalId>> tombs;
  };

  SegmentedIndex(SegmentedParams params, std::size_t dim);

  [[nodiscard]] std::shared_ptr<const View> snapshot() const;
  void publish(std::shared_ptr<const View> v);
  [[nodiscard]] std::shared_ptr<Delta> make_delta() const;
  /// Freeze `rows` into a new segment (quantizing when quantize_frozen).
  /// `heat`, when row-aligned with `rows`, carries measured access counts
  /// into the quantized tier's re-rank cache selection (major compactions
  /// harvest them from the segments being merged).
  [[nodiscard]] std::shared_ptr<const Segment> freeze_rows(
      data::Dataset rows, ThreadPool* pool,
      std::span<const std::uint64_t> heat = {});
  /// compact() body; caller holds write_mu_.
  /// Caller holds write_mu_. `force_major` skips the tier decision and runs
  /// the full merge (re-inserting an erased id must purge its old frozen
  /// copies, which only a major compaction does).
  bool compact_locked(ThreadPool* pool, bool force_major = false);

  SegmentedParams params_;
  std::size_t dim_ = 0;

  /// Serializes insert/erase/compact/serialization against each other.
  mutable std::mutex write_mu_;
  /// Guards the view_ pointer swap (readers copy under it, briefly).
  mutable std::mutex view_mu_;
  std::shared_ptr<const View> view_;

  /// Live-id membership for erase()/contains()/size(). Writers mutate under
  /// write_mu_ + live_mu_; readers take live_mu_ alone.
  mutable std::mutex live_mu_;
  std::unordered_set<GlobalId> live_;

  std::uint64_t next_segment_id_ = 0;
  std::atomic<std::uint64_t> compactions_{0};
};

}  // namespace annsim::segment
