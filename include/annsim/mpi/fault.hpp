#pragma once
/// \file fault.hpp
/// \brief Deterministic, seeded fault injection for the simulated MPI runtime.
///
/// The threads-as-ranks runtime makes worker failure cheap to reproduce: a
/// "killed" rank keeps running (its thread cannot be torn out from under the
/// C++ runtime), but every user-visible effect it would have on other ranks —
/// point-to-point sends with user tags and one-sided RMA mutations (put /
/// get_accumulate) — is silently dropped from the kill point onward. That is
/// the classic fail-silent model: peers observe only missing messages, never
/// an error, and must detect the failure with timeouts (Comm::recv_for,
/// Request::wait_for).
///
/// Failure model boundaries, chosen deliberately:
///  * Collective traffic (internal tags < 0) is never faulted. Injecting
///    faults into barrier/bcast would deadlock every rank by construction;
///    the interesting failures — and the ones the engine's failover handles —
///    live on the request/response data plane.
///  * User tags listed in `FaultPlan::reliable_tags` ride a reliable fabric:
///    never dropped or delayed, and they do not consume the sender's op
///    budget. This is the control plane — termination tokens whose loss no
///    timeout can compensate for (a worker that never hears End-of-Queries
///    spins forever, hanging the whole runtime). Reliable is *not* the same
///    as death-proof: a dead rank is silent on every user tag, reliable ones
///    included — otherwise a killed worker would keep heartbeating and no
///    health monitor could ever notice it died.
///  * Window::get (a pure read) is not faulted: a dead rank reading remote
///    memory has no observable effect on its peers.
///  * Traffic counters record *attempted* sends: the sender paid the cost
///    even when the fabric (or its own death) ate the message.
///
/// Every probabilistic decision is a pure function of (seed, rank, op index),
/// so a chaos run is replayable from its logged seed regardless of thread
/// scheduling.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace annsim::mpi {

/// Sentinel for kill triggers that never fire.
inline constexpr std::uint64_t kNeverFires = ~std::uint64_t{0};

/// One kill schedule entry: the rank goes silent once either trigger fires.
struct KillRule {
  int rank = -1;                           ///< global runtime rank to kill
  std::uint64_t after_ops = kNeverFires;   ///< deliver this many user ops, then die
  std::uint64_t at_step = kNeverFires;     ///< die once the logical step clock reaches this
};

/// What the disk does to the write-ahead-log frame the fault fires on. All
/// four kinds are terminal: the rank dies at the fault, so nothing past the
/// corrupted frame was ever acked — recovery may truncate at the first bad
/// frame without losing an acknowledged write.
enum class DiskFaultKind : std::uint8_t {
  kCrashAtLsn,  ///< process dies before the frame reaches the page cache
  kShortWrite,  ///< power loss mid-write: a prefix of the frame lands
  kTornWrite,   ///< frame-sized region allocated, tail half never written
  kFlipByte,    ///< media corruption: one payload byte bit-flipped
};

/// One disk-fault schedule entry: fires on the first WAL frame of `rank`
/// whose LSN reaches `at_lsn`, then marks the rank dead (fail-silent, like a
/// KillRule) so the MPI and disk planes agree the worker is gone.
struct DiskFaultRule {
  int rank = -1;
  std::uint64_t at_lsn = kNeverFires;
  DiskFaultKind kind = DiskFaultKind::kCrashAtLsn;
};

/// A reproducible fault schedule for one Runtime. Default-constructed plans
/// are inert (enabled() == false) and cost nothing on the send path.
struct FaultPlan {
  std::uint64_t seed = 0;            ///< stream seed for drop/delay decisions
  double drop_probability = 0.0;     ///< per user op, uniform in [0, 1]
  double delay_probability = 0.0;    ///< per user op, uniform in [0, 1]
  std::chrono::microseconds delay{0};  ///< sender-side stall for delayed ops
  /// Per best-effort op: the fabric delivers the message twice. Reliable tags
  /// are exempt (the control plane is exactly-once by construction), so
  /// duplicates only ever land on data-plane tags whose receivers must
  /// already tolerate retransmission (failover re-dispatch looks identical).
  double duplicate_probability = 0.0;
  /// Per best-effort op: the message overtakes everything queued ahead of it
  /// at the receiver (delivered out of order). Reliable tags are exempt.
  double reorder_probability = 0.0;
  std::vector<KillRule> kills;
  /// Disk-fault plane: deterministic WAL corruption keyed by LSN rather than
  /// op index (the write path consults it from commit(), where the op budget
  /// does not apply).
  std::vector<DiskFaultRule> disk_faults;
  /// Control-plane user tags (>= 0) on the reliable fabric — exempt from
  /// drop/delay rolls and the op budget, but still silenced once the sending
  /// rank is dead (fail-silent means silent everywhere).
  std::vector<std::int32_t> reliable_tags;

  [[nodiscard]] bool enabled() const noexcept {
    return drop_probability > 0.0 || delay_probability > 0.0 ||
           duplicate_probability > 0.0 || reorder_probability > 0.0 ||
           !kills.empty() || !disk_faults.empty();
  }
};

/// Verdict for one best-effort op: how the fabric treats the message.
enum class Delivery : std::uint8_t {
  kDrop,       ///< message vanishes (drop roll lost, or sender dead)
  kDeliver,    ///< normal in-order delivery
  kDuplicate,  ///< delivered twice (retransmission)
  kReorder,    ///< overtakes messages already queued at the receiver
};

/// Runtime state of one plan: per-rank op counters, death flags, and the
/// logical step clock. Thread-safe — a worker's whole thread team funnels its
/// sends through allow_op concurrently.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int n_ranks);

  /// Consult the plan for the next user-visible op (p2p send or RMA
  /// mutation) of `global_rank`. Returns false when the op must be dropped —
  /// the rank is dead, just died, or lost the drop roll — and sleeps inline
  /// on delay rolls (the sender thread stalls, exactly like a slow link).
  bool allow_op(int global_rank);

  /// Like allow_op, but additionally rolls the duplicate/reorder dice so the
  /// p2p send path can mis-deliver best-effort messages. Drop wins over
  /// duplicate wins over reorder (a dropped message cannot also arrive
  /// twice). RMA mutations keep using allow_op: an accumulate is applied
  /// in-place, so "duplicate" and "reorder" have no meaning there.
  Delivery classify_op(int global_rank);

  /// Gate a reliable-tag op: consumes no op budget and rolls no dice, but
  /// returns false once the sender is dead (evaluating pending kill triggers
  /// so a rank that idles on the control plane still dies on schedule).
  bool allow_reliable_op(int global_rank);

  /// Is `tag` on the plan's control plane (exempt from drop/delay/budget)?
  [[nodiscard]] bool is_reliable(std::int32_t tag) const noexcept;

  /// Consult the disk-fault plane for `global_rank` about the WAL frame at
  /// `lsn`. Fires at most once per rule: the first frame whose LSN reaches
  /// `at_lsn` gets the fault kind back and the rank is marked dead (all disk
  /// faults are terminal). Returns nullopt on the fast path. Thread-safe and
  /// deterministic: the WAL serializes commits, and LSNs are globally
  /// monotone, so the firing frame is a pure function of the plan.
  std::optional<DiskFaultKind> disk_fault_at(int global_rank,
                                             std::uint64_t lsn);

  /// Resurrect a rank: clears its death flag and disarms its kill triggers
  /// (MPI and disk alike) so they cannot re-fire. Call only between run()
  /// phases (the rank threads must be joined) — the recovery layer revives a
  /// worker, restores its replicas, and only then starts the next phase.
  void revive(int global_rank);

  /// Advance the logical step clock that `KillRule::at_step` triggers on.
  /// The application defines what a step is (a batch, a phase, an epoch).
  void advance_step() noexcept { step_.fetch_add(1, std::memory_order_acq_rel); }

  [[nodiscard]] std::uint64_t step() const noexcept {
    return step_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool is_dead(int global_rank) const;
  /// Ranks whose kill rule has fired so far, ascending.
  [[nodiscard]] std::vector<int> dead_ranks() const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] int n_ranks() const noexcept { return n_ranks_; }

 private:
  struct RankState {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<bool> dead{false};
    std::uint64_t kill_after_ops = kNeverFires;
    std::uint64_t kill_at_step = kNeverFires;
    std::atomic<std::uint64_t> disk_fault_lsn{kNeverFires};
    DiskFaultKind disk_fault_kind = DiskFaultKind::kCrashAtLsn;
  };

  FaultPlan plan_;
  int n_ranks_ = 0;
  std::atomic<std::uint64_t> step_{0};
  std::unique_ptr<RankState[]> ranks_;
};

}  // namespace annsim::mpi
