#pragma once
/// \file mpi.hpp
/// \brief In-process simulated MPI runtime (threads-as-ranks).
///
/// The paper's system is a hybrid MPI+OpenMP code on a Cray XC40. This
/// workspace has no MPI implementation, so — per the reproduction's
/// substitution rule — we provide a faithful in-process runtime exposing the
/// primitives the paper names:
///
///  * nonblocking point-to-point: `isend` / `irecv` / `Request::test` /
///    `Request::wait` / `Request::cancel` (Algorithms 3–4 are written
///    directly against these),
///  * collectives: `barrier`, `bcast`, `gather`, `scatter`, `alltoallv`
///    (Algorithm 2 shuffles partitions with MPI_Alltoallv), `allreduce`,
///  * communicator splitting (`split`) — the distributed VP-tree construction
///    recurses on halves of the process set,
///  * one-sided RMA windows with passive-target shared locks and atomic
///    `get_accumulate` (§IV-C1, Fig 2).
///
/// Semantics preserved from MPI: per-(source,comm) FIFO message ordering,
/// tag/source matching with wildcards, non-overtaking matching, collective
/// calls made in the same order by every member, and atomicity of
/// get_accumulate at the target. Each rank runs as one OS thread; payloads
/// are copied on send, never shared.
///
/// The runtime also keeps per-rank traffic counters (messages/bytes by
/// class) that the discrete-event performance model consumes.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "annsim/check/check.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/common/types.hpp"
#include "annsim/mpi/fault.hpp"

namespace annsim::mpi {

class ScheduleController;  // schedule.hpp — controlled scheduling (explore)

inline constexpr int kAnySource = -1;
using Tag = std::int32_t;
inline constexpr Tag kAnyTag = -1;

/// A received message.
struct Message {
  int source = kAnySource;  ///< sender's rank within the communicator
  Tag tag = kAnyTag;
  std::vector<std::byte> payload;
};

/// Per-rank traffic counters (cumulative).
struct TrafficStats {
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t rma_ops = 0;
  std::uint64_t rma_bytes = 0;
  std::uint64_t collective_ops = 0;
  std::uint64_t collective_bytes = 0;

  TrafficStats& operator+=(const TrafficStats& o) noexcept {
    p2p_messages += o.p2p_messages;
    p2p_bytes += o.p2p_bytes;
    rma_ops += o.rma_ops;
    rma_bytes += o.rma_bytes;
    collective_ops += o.collective_ops;
    collective_bytes += o.collective_bytes;
    return *this;
  }
};

namespace detail {
struct RuntimeState;
struct RecvState;
struct WindowState;
}  // namespace detail

/// Handle for a nonblocking operation (MPI_Request).
class Request {
 public:
  Request() = default;

  /// True if this handle refers to an operation.
  [[nodiscard]] bool valid() const noexcept;

  /// Nonblocking completion check (MPI_Test).
  [[nodiscard]] bool test();

  /// Block until complete (MPI_Wait).
  void wait();

  /// Bounded wait: true when the operation completed within `timeout` (its
  /// message can be taken), false on timeout or cancellation. A timed-out
  /// request stays posted — the caller may wait again or cancel() it. This is
  /// the primitive honest MPI codes need to survive a silent peer: a master
  /// waiting on a dead worker gets `false` instead of hanging forever.
  [[nodiscard]] bool wait_for(std::chrono::microseconds timeout);

  /// Cancel a pending receive (MPI_Cancel); returns false if the operation
  /// already completed (its message must then be taken).
  bool cancel();

  /// Retrieve the message of a completed receive (empty Message for sends).
  [[nodiscard]] Message take();

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RecvState> state);
  std::shared_ptr<detail::RecvState> state_;  ///< null => completed send
};

/// One-sided RMA window (MPI_Win). Created collectively; each rank exposes a
/// local buffer (possibly empty). Access requires a passive-target lock
/// (shared mode), matching the paper's MPI_Win_lock(SHARED) usage.
class Window {
 public:
  /// Merge operation applied atomically at the target during get_accumulate:
  /// reads+modifies the target region in place, given the origin data.
  using MergeOp =
      std::function<void(std::span<std::byte> target_region,
                         std::span<const std::byte> origin_data)>;

  Window() = default;

  /// Begin a passive-target access epoch at `target` (shared lock).
  void lock_shared(int target);
  /// End the access epoch at `target`.
  void unlock(int target);

  /// MPI_Put: copy `data` into the target's buffer at `offset`.
  void put(int target, std::size_t offset, std::span<const std::byte> data);

  /// MPI_Get: copy `len` bytes from the target's buffer at `offset`.
  [[nodiscard]] std::vector<std::byte> get(int target, std::size_t offset,
                                           std::size_t len);

  /// MPI_Get_accumulate with a user merge op: atomically fetch the previous
  /// contents of the target region (returned via `prev_out` if non-null) and
  /// merge `origin_data` into it. This is the atomic remote read-update the
  /// workers use to fold local k-NN results into the master's buffer.
  void get_accumulate(int target, std::size_t offset,
                      std::span<const std::byte> origin_data, const MergeOp& op,
                      std::vector<std::byte>* prev_out = nullptr);

  /// This rank's exposed region.
  [[nodiscard]] std::span<std::byte> local_data();
  [[nodiscard]] std::size_t local_size() const;

 private:
  friend class Comm;
  Window(std::shared_ptr<detail::WindowState> state, int my_rank);
  std::shared_ptr<detail::WindowState> state_;
  int my_rank_ = -1;
};

/// A communicator: an ordered group of ranks with isolated message matching.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return my_index_; }
  [[nodiscard]] int size() const noexcept { return int(members_.size()); }

  // --- point-to-point (user tags must be >= 0) ---
  void send(int dest, Tag tag, std::span<const std::byte> payload);
  Request isend(int dest, Tag tag, std::span<const std::byte> payload);
  [[nodiscard]] Message recv(int source = kAnySource, Tag tag = kAnyTag);
  /// recv with a deadline: `std::nullopt` if no matching message arrived
  /// within `timeout` (the posted receive is cancelled — a later message is
  /// NOT consumed). Never hangs on a dead peer.
  [[nodiscard]] std::optional<Message> recv_for(int source, Tag tag,
                                                std::chrono::microseconds timeout);
  [[nodiscard]] Request irecv(int source = kAnySource, Tag tag = kAnyTag);
  /// Post a receive matching any tag in `tags` (each >= 0, non-empty). The
  /// safe alternative to a kAnyTag wildcard: a loop that owns several tags
  /// names exactly those, so a message on any *other* tag — present or added
  /// later — can never be swallowed by the wrong code path. The matched tag
  /// is reported in the taken Message.
  [[nodiscard]] Request irecv_tags(int source, std::vector<Tag> tags);
  /// Is a matching message waiting? (MPI_Iprobe)
  [[nodiscard]] bool iprobe(int source = kAnySource, Tag tag = kAnyTag);

  // --- control-plane point-to-point ---
  /// Like send/isend, but exempt from the checker's reserved-tag rule
  /// (check::Rule::kReservedTagSend). Use at the few call sites that
  /// legitimately emit control-plane traffic (EOQ, heartbeats, ...); plain
  /// send/isend on a tag listed in CheckOptions::reserved_tags is flagged.
  void send_reserved(int dest, Tag tag, std::span<const std::byte> payload);
  Request isend_reserved(int dest, Tag tag, std::span<const std::byte> payload);

  // --- collectives (every member must call, in the same order) ---
  void barrier();
  /// Root's buffer is returned on every rank.
  [[nodiscard]] std::vector<std::byte> bcast(std::span<const std::byte> buf, int root);
  /// Returns one buffer per rank at root (empty vector elsewhere).
  [[nodiscard]] std::vector<std::vector<std::byte>> gather(
      std::span<const std::byte> buf, int root);
  /// Root supplies size() buffers; each rank gets its own.
  [[nodiscard]] std::vector<std::byte> scatter(
      const std::vector<std::vector<std::byte>>& bufs, int root);
  /// Personalized all-to-all with per-destination buffers (MPI_Alltoallv).
  [[nodiscard]] std::vector<std::vector<std::byte>> alltoallv(
      const std::vector<std::vector<std::byte>>& send_bufs);

  /// Partition this communicator by color (MPI_Comm_split, key = rank).
  [[nodiscard]] Comm split(int color) const;

  /// Collectively create an RMA window; this rank exposes `local_bytes`.
  [[nodiscard]] Window create_window(std::size_t local_bytes);

  // --- typed convenience wrappers ---
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dest, Tag tag, const T& v) {
    send(dest, tag, std::as_bytes(std::span<const T, 1>(&v, 1)));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T bcast_value(T v, int root) {
    auto bytes = bcast(std::as_bytes(std::span<const T, 1>(&v, 1)), root);
    T out;
    std::memcpy(&out, bytes.data(), sizeof(T));
    return out;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> gather_values(const T& v, int root) {
    auto bufs = gather(std::as_bytes(std::span<const T, 1>(&v, 1)), root);
    std::vector<T> out;
    out.reserve(bufs.size());
    for (auto& b : bufs) {
      T x;
      std::memcpy(&x, b.data(), sizeof(T));
      out.push_back(x);
    }
    return out;
  }

  /// Reduce with a binary op on a trivially-copyable value; result on all.
  template <typename T, typename F>
    requires std::is_trivially_copyable_v<T>
  T allreduce(T v, F op) {
    auto all = gather_values(v, 0);
    T acc = v;
    if (rank() == 0) {
      acc = all[0];
      for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
    }
    return bcast_value(acc, 0);
  }

  /// Traffic counters of this rank (cumulative across communicators).
  [[nodiscard]] TrafficStats traffic() const;

 private:
  friend class Runtime;
  Comm(std::shared_ptr<detail::RuntimeState> rt, std::uint64_t comm_id,
       std::vector<int> members, int my_index);

  /// Shared implementation of all sends. `internal` marks collective traffic
  /// (negative tags allowed, never fault-gated); `reserved_ok` suppresses the
  /// checker's reserved-tag rule (send_reserved / isend_reserved).
  Request isend_impl(int dest, Tag tag, std::span<const std::byte> payload,
                     bool internal, bool reserved_ok);
  /// Blocking receive on an internal collective tag — bypasses the
  /// user-facing tag rules but keeps the checker's deadlock instrumentation.
  Message recv_internal_(int source, Tag tag);

  std::shared_ptr<detail::RuntimeState> rt_;
  std::uint64_t comm_id_ = 0;
  std::vector<int> members_;  ///< global rank of each communicator index
  int my_index_ = -1;
};

/// Owns the rank threads. `run` executes `rank_main(comm)` once per rank and
/// joins; the first exception thrown by any rank is rethrown to the caller.
class Runtime {
 public:
  explicit Runtime(int n_ranks);
  /// Construct with a fault schedule (see fault.hpp). An inert plan
  /// (enabled() == false) behaves exactly like the plain constructor.
  /// Injector state (op counters, death flags) persists across run() calls.
  Runtime(int n_ranks, const FaultPlan& plan);
  /// Construct with a pre-existing injector so fault state (death flags, op
  /// counters, step clock) survives *across* Runtimes — the engine creates a
  /// fresh Runtime per search batch, but a worker declared dead in batch 3
  /// must still be dead in batch 4 unless somebody revived it. A null
  /// injector behaves exactly like the plain constructor.
  Runtime(int n_ranks, std::shared_ptr<FaultInjector> injector);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] int size() const noexcept;

  void run(const std::function<void(Comm&)>& rank_main);

  /// Sum of all ranks' traffic counters (valid after run()).
  [[nodiscard]] TrafficStats total_traffic() const;
  /// One entry per rank.
  [[nodiscard]] std::vector<TrafficStats> per_rank_traffic() const;

  // --- controlled scheduling (annsim::explore) ---
  /// Install a schedule controller (see mpi/schedule.hpp). While the
  /// controller is armed, run() serializes its rank threads onto the
  /// controller's scheduler: every message delivery, bounded-wait timeout,
  /// and one-sided op becomes an explicit choice point, making the whole
  /// execution deterministic and replayable. With the controller disarmed
  /// (or null) behavior is unchanged. Call before run().
  void set_schedule(std::shared_ptr<ScheduleController> schedule);
  [[nodiscard]] std::shared_ptr<ScheduleController> schedule() const noexcept;

  /// The installed fault injector, or nullptr when constructed without a
  /// plan (or with an inert one). Use it to advance the logical step clock
  /// or inspect which ranks have died.
  [[nodiscard]] FaultInjector* fault_injector() noexcept;
  /// Ranks whose kill rule fired (empty without fault injection).
  [[nodiscard]] std::vector<int> failed_ranks() const;

  // --- usage-correctness checking (annsim::check) ---
  /// Install (or reconfigure) the MPI usage verifier. The environment is
  /// folded in: ANNSIM_MPI_CHECK=1 force-enables even if `opts.enabled` is
  /// false, and ANNSIM_MPI_CHECK_FATAL (when set) overrides `opts.fatal`.
  /// With the checker off this is free; with it on, every run() finalizes
  /// with a leak/unmatched-send/epoch scan and — when `fatal` — throws
  /// annsim::Error carrying the report text if new violations were found.
  /// Call before run(); reconfiguring resets nothing but the options.
  void configure_check(const check::CheckOptions& opts);
  /// True when a verifier is installed (explicitly or via the environment).
  [[nodiscard]] bool check_enabled() const noexcept;
  /// Snapshot of the cumulative report (all run() calls on this Runtime).
  [[nodiscard]] check::CheckReport check_report() const;

 private:
  std::shared_ptr<detail::RuntimeState> state_;
};

}  // namespace annsim::mpi
