#pragma once
/// \file schedule.hpp
/// \brief Controlled scheduling of the simulated MPI runtime (annsim::explore).
///
/// A ScheduleController serializes the rank threads of a Runtime onto one
/// logical processor and decides, at every *choice point*, which eligible
/// event happens next:
///
///  * kDeliver — a sent message moves from its (sender, receiver, comm)
///    channel into the receiver's mailbox (completing a matching recv),
///  * kTimeout — a bounded wait (`Request::wait_for` / `Comm::recv_for`)
///    gives up instead of completing,
///  * kRma     — a one-sided window operation executes at its target.
///
/// The model is quiescence-based: controlled threads run freely between
/// choice points; the scheduler only commits an event when every tracked
/// thread is parked (blocked in a wait, a bounded wait, an RMA op, or a
/// completion poll). Because each rank is single-threaded between parks, the
/// whole execution is a deterministic function of the sequence of decisions —
/// which is exactly what makes a run replayable from its decision trace.
///
/// Decisions are delegated to a pluggable ScheduleStrategy (random walk,
/// PCT-style priorities, exhaustive enumeration — see annsim/explore/).
/// Only *branch points* (two or more eligible events) consult the strategy
/// and are recorded in the trace; forced commits are folded into the digest
/// but cost nothing to replay.
///
/// Threads never spawned by Runtime::run (engine helper threads, failure
/// beacons) are not tracked: their operations pass through uncontrolled.
/// Exploration scenarios therefore run each rank single-threaded.

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "annsim/common/types.hpp"

namespace annsim::mpi {

/// What kind of event a choice point selects.
enum class ChoiceKind : std::uint8_t {
  kDeliver = 0,  ///< move a channel-head message into the dest mailbox
  kTimeout = 1,  ///< fire the virtual deadline of a parked bounded wait
  kRma = 2,      ///< let a parked one-sided op execute at its target
};

/// One eligible event at a choice point. `seq` disambiguates events that
/// share endpoints: the position in its channel for deliveries, a per-rank
/// operation counter for timeouts and RMA ops. The tuple
/// (kind, source, dest, tag, comm_id, seq) identifies the event canonically;
/// eligible sets are presented to strategies sorted by exactly that tuple.
struct ChoiceEvent {
  ChoiceKind kind = ChoiceKind::kDeliver;
  int source = -1;            ///< sender / waiter / RMA-origin global rank
  int dest = -1;              ///< receiver / RMA-target global rank
                              ///< (== source for timeouts)
  std::int32_t tag = -1;      ///< message tag; -1 for timeouts and RMA
  std::uint64_t comm_id = 0;  ///< communicator (or window) id
  std::uint64_t seq = 0;

  friend bool operator==(const ChoiceEvent&, const ChoiceEvent&) = default;
  friend auto operator<=>(const ChoiceEvent&, const ChoiceEvent&) = default;
};

/// Render "deliver 0->2 tag=15 comm=0 seq=3" for dumps and errors.
[[nodiscard]] std::string to_string(const ChoiceEvent& ev);

/// Picks which eligible event commits at a branch point. `eligible` is
/// canonically sorted and has at least two entries; the returned index must
/// be < eligible.size(). Called with the controller lock held — strategies
/// must not call back into the runtime.
class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;
  virtual std::size_t pick(const std::vector<ChoiceEvent>& eligible) = 0;
};

struct ScheduleOptions {
  /// Hard stop: a schedule committing more events than this is declared
  /// stuck (an exploration bug or a livelocking program), and every parked
  /// thread unwinds with an error.
  std::uint64_t max_commits = 1u << 20;
};

/// The record of one controlled execution. `choices[i]` is the index picked
/// at the i-th branch point; the digest folds every committed event (forced
/// and chosen) in commit order, so two runs with equal digests executed the
/// same event sequence — that is the replay fidelity check.
struct ScheduleTrace {
  std::vector<std::uint8_t> choices;
  std::uint64_t branch_points = 0;
  std::uint64_t commits = 0;
  std::uint64_t digest = 14695981039346656037ULL;  ///< FNV-1a offset basis
  bool deadlocked = false;
  std::string error;  ///< non-empty when the schedule was aborted
};

/// Serializes the rank threads of one (or several, sequential) Runtimes.
/// Install with Runtime::set_schedule before run(); arm() between runs.
/// All runtime-facing entry points are safe to call from untracked threads —
/// they simply pass through.
class ScheduleController {
 public:
  ScheduleController();
  ~ScheduleController();

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  /// Take control of subsequent runs. Must be called at quiescence (no
  /// tracked threads); resets the trace.
  void arm(std::shared_ptr<ScheduleStrategy> strategy, ScheduleOptions opts = {});
  /// Release control and return the trace of everything since arm().
  /// Must be called at quiescence.
  ScheduleTrace disarm();
  [[nodiscard]] bool armed() const noexcept;

  // --- runtime-facing hooks (called by the mpi layer, not by users) ---

  /// Claim `n_threads` about-to-spawn rank threads. Returns false (and
  /// claims nothing) when not armed. Counting the whole cohort *before* any
  /// thread starts keeps the scheduler from firing on a partial view.
  bool begin_run(int n_threads);
  /// Mark the calling thread as one of the claimed cohort.
  void attach_thread();
  /// The calling thread is done (normally or unwinding). When the last
  /// tracked thread finishes, undelivered channels flush to their mailboxes
  /// in canonical order so post-run sweeps see every sent message.
  void finish_thread();
  /// True when the calling thread is tracked by this armed controller.
  [[nodiscard]] bool controls_this_thread() const noexcept;

  /// Queue a delivery decided later by the scheduler. Returns false (nothing
  /// queued) when the calling thread is not controlled — the caller then
  /// delivers directly. `commit` performs the actual mailbox delivery; it
  /// runs under the controller lock and must not block.
  bool submit(ChoiceEvent ev, std::function<void()> commit);

  /// Park until `ready()` holds. Returns false when the calling thread is
  /// not controlled (caller falls back to its own blocking wait). `ready` is
  /// re-evaluated by the scheduler after every commit; it may take fine locks
  /// (mailbox/recv-state) but must not call back into the controller.
  bool wait_point(int rank, std::function<bool()> ready);

  enum class TimedOutcome {
    kPassThrough,  ///< thread not controlled: caller performs a real timed wait
    kReady,        ///< ready() holds — the awaited completion was scheduled
    kTimedOut,     ///< the scheduler chose this wait's timeout event
  };
  /// Bounded-wait choice point: the real duration is virtualized away and
  /// the schedule decides whether the wait completes or times out.
  TimedOutcome timed_wait_point(int rank, std::function<bool()> ready);

  /// One-sided-op choice point: park until the scheduler grants this origin
  /// its turn at `target`. Returns immediately (false) when not controlled;
  /// the caller performs the window operation after this returns either way.
  bool rma_point(int origin, int target, std::uint64_t window_id);

  /// Re-run the scheduler if everything is parked. Called after an
  /// *untracked* thread delivers directly into a mailbox, so a parked
  /// tracked thread whose predicate just became true is woken.
  void poke();

 private:
  struct Parked;
  struct ChannelEntry;
  using ChannelKey = std::tuple<int, int, std::uint64_t>;  // source, dest, comm

  void park_and_wait(std::unique_lock<std::mutex>& lk, Parked& entry);
  void schedule_locked();
  void flush_channels_locked();
  void fail_locked(bool deadlock, std::string why);
  void fold_digest_locked(const ChoiceEvent& ev);
  [[nodiscard]] std::string dump_locked() const;

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  bool stop_ = false;  ///< a failure was declared; parked threads unwind
  std::shared_ptr<ScheduleStrategy> strategy_;
  ScheduleOptions opts_;
  ScheduleTrace trace_;

  int tracked_ = 0;   ///< threads claimed by begin_run, not yet finished
  int runnable_ = 0;  ///< tracked threads not currently parked
  std::map<ChannelKey, std::list<ChannelEntry>> channels_;
  std::map<ChannelKey, std::uint64_t> channel_seq_;
  std::map<int, std::uint64_t> rank_seq_;  ///< per-rank timeout/RMA counters
  std::list<Parked*> parked_;
};

}  // namespace annsim::mpi
