#pragma once
/// \file sq_codec.hpp
/// \brief SQ8 scalar quantizer: per-dimension min/max affine codec mapping
/// float rows to uint8 code rows (4x smaller) and back.
///
/// Encoding of dimension d:  code = round((v - min_d) / scale_d), clamped to
/// [0, 255], with scale_d = (max_d - min_d) / 255 trained over the corpus.
/// Decoding: v' = min_d + scale_d * code. The worst-case per-dimension
/// reconstruction error of an in-range value is scale_d / 2 (round-to-
/// nearest); out-of-range values (possible when encoding rows the codec was
/// not trained on) clamp to the trained range.
///
/// The codec stores `mins`/`scales` padded to the code stride so the fused
/// decode+distance kernels (simd::l2_sq_batch_u8 / ip_batch_u8) can read them
/// alongside the code rows. Code rows are padded to kCodeAlign bytes so code
/// slabs built from code_stride() keep every row cache-line-friendly.

#include <cstddef>
#include <cstdint>
#include <span>

#include "annsim/common/aligned_buffer.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/data/dataset.hpp"

namespace annsim::quant {

class SqCodec {
 public:
  /// Code rows are padded to a multiple of this many bytes.
  static constexpr std::size_t kCodeAlign = 32;

  SqCodec() = default;

  /// Train over every row of `rows`: per-dimension min/max sweep. A constant
  /// dimension (max == min) gets scale 0 and decodes exactly.
  static SqCodec train(const data::Dataset& rows);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  /// Bytes per code row (dim padded to kCodeAlign; padding encodes as 0 and
  /// decodes to 0 contribution — scale and min are 0 in the padded tail).
  [[nodiscard]] std::size_t code_stride() const noexcept {
    return (dim_ + kCodeAlign - 1) / kCodeAlign * kCodeAlign;
  }

  /// Quantize one `dim()`-float row into `code_stride()` bytes (padding
  /// zeroed).
  void encode(std::span<const float> row, std::uint8_t* code) const noexcept;
  /// Reconstruct one row: `out` receives `dim()` floats.
  void decode(const std::uint8_t* code, float* out) const noexcept;

  [[nodiscard]] const float* mins() const noexcept { return mins_.data(); }
  [[nodiscard]] const float* scales() const noexcept { return scales_.data(); }

  /// Largest per-dimension round-trip error bound: max_d(scale_d) / 2.
  [[nodiscard]] float max_abs_error() const noexcept;

  void serialize(BinaryWriter& w) const;
  static SqCodec deserialize(BinaryReader& r);

 private:
  std::size_t dim_ = 0;
  AlignedBuffer<float> mins_;    ///< code_stride() entries, padded with 0
  AlignedBuffer<float> scales_;  ///< code_stride() entries, padded with 0
};

}  // namespace annsim::quant
