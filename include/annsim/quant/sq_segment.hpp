#pragma once
/// \file sq_segment.hpp
/// \brief Quantized frozen segment: SQ8 code rows + the frozen HNSW topology
/// + an exact float re-rank cache for the hottest rows.
///
/// This is the compressed counterpart of SegmentedIndex's (Dataset,
/// HnswIndex) frozen segment. At freeze time the full-float rows are still
/// in hand, so the segment:
///
///  1. trains an SqCodec (per-dimension min/max affine) and encodes every
///     row into a 64-byte-aligned code slab — the only per-row storage the
///     segment keeps resident (1 byte/dim instead of 4);
///  2. builds the standard HNSW graph *on the floats* and keeps its frozen
///     FlatGraph — traversal topology is identical to the float tier, only
///     the distance evaluations run over codes via the fused uint8 kernels;
///  3. copies the hottest `float_cache_fraction` of rows, as full floats,
///     into the *re-rank cache*. "Hottest" is measured access frequency when
///     the freeze happens during a major compaction (per-row hit counters
///     from the previous epoch travel through the merge); on a cold build it
///     falls back to graph hubness (upper-layer membership, then layer-0
///     degree), which is what beam search hits most.
///
/// Every search traverses codes, then *re-ranks* the whole candidate list
/// before emission: candidates whose float row is cached get their distance
/// recomputed exactly; the rest keep the (already tight, max_abs_error-
/// bounded) asymmetric SQ8 distance. Per-row access counters are bumped on
/// every re-rank so the next compaction re-selects the cache from measured
/// traffic.
///
/// Thread-safety: search()/scan() are const and safe concurrently (access
/// counters are relaxed atomics); build and deserialization must complete
/// before the first search, which SegmentedIndex's write lock guarantees.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "annsim/common/aligned_buffer.hpp"
#include "annsim/common/thread_pool.hpp"
#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/quant/sq_codec.hpp"

namespace annsim::quant {

struct SqSegmentParams {
  /// Graph construction / default search parameters (metric included; only
  /// kL2 and kInnerProduct have uint8 kernels).
  hnsw::HnswParams hnsw;
  /// Fraction of rows kept as exact floats for re-ranking, in [0, 1].
  /// The ~1-5% range recovers most of the recall the codes give up while
  /// keeping the memory win near the full 4x.
  double float_cache_fraction = 0.02;
};

/// Re-rank traffic counters (diagnostics; monotonically increasing).
struct SqSegmentCounters {
  std::uint64_t rerank_exact = 0;  ///< candidates re-scored from the cache
  std::uint64_t rerank_coded = 0;  ///< candidates kept at SQ8 distance
};

class SqSegment {
 public:
  /// Quantize `rows` into a frozen compressed segment. `heat[i]`, when
  /// provided (size == rows.size()), is the measured access count of row i
  /// and drives the re-rank cache selection; empty means cold build
  /// (hubness fallback).
  static std::unique_ptr<SqSegment> build(
      const data::Dataset& rows, const SqSegmentParams& params,
      ThreadPool* pool = nullptr, std::span<const std::uint64_t> heat = {});

  SqSegment(const SqSegment&) = delete;
  SqSegment& operator=(const SqSegment&) = delete;
  ~SqSegment();  // out-of-line: Scratch is incomplete here

  /// Graph k-NN over codes (beam width ef, 0 = params.hnsw.ef_search) with
  /// exact re-rank of the candidate list. Distances follow the library-wide
  /// ranking convention; ids are global.
  [[nodiscard]] std::vector<Neighbor> search(const float* query, std::size_t k,
                                             std::size_t ef = 0) const;

  /// Brute-force k-NN: one contiguous batched-kernel sweep over the code
  /// slab, then the same exact re-rank on the overfetched candidate list.
  [[nodiscard]] std::vector<Neighbor> scan(const float* query,
                                           std::size_t k) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t dim() const noexcept { return codec_.dim(); }
  [[nodiscard]] GlobalId id(std::size_t row) const noexcept {
    return ids_[row];
  }
  [[nodiscard]] std::span<const GlobalId> ids() const noexcept { return ids_; }
  [[nodiscard]] const SqCodec& codec() const noexcept { return codec_; }
  [[nodiscard]] const SqSegmentParams& params() const noexcept {
    return params_;
  }

  /// Reconstruct row `row`: exact floats when cached, decoded codes
  /// otherwise. `out` receives dim() floats.
  void reconstruct(std::size_t row, float* out) const;

  /// Rows whose exact float copy is resident in the re-rank cache.
  [[nodiscard]] std::size_t cached_rows() const noexcept { return n_cached_; }

  /// Resident bytes of the compressed row plane: code slab + re-rank cache
  /// + cache slot table + codebook. (The graph is excluded: the float tier
  /// carries an identical one.)
  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  /// What the float tier would keep resident for the same rows (padded
  /// Dataset row storage), for like-for-like compression reporting.
  [[nodiscard]] std::size_t float_bytes() const noexcept;

  /// Snapshot of the per-row access counters (re-rank hits since build or
  /// restore). Keyed by row index; pair with ids() to survive a merge.
  [[nodiscard]] std::vector<std::uint64_t> access_counts() const;

  [[nodiscard]] SqSegmentCounters counters() const noexcept;

  /// Codes + codebook + graph + cached float rows. Deterministic: identical
  /// logical state yields identical bytes (access counters excluded — they
  /// reset on restore).
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  static std::unique_ptr<SqSegment> from_bytes(std::span<const std::byte> bytes,
                                               const SqSegmentParams& params);

 private:
  SqSegment() = default;

  struct Scratch;
  /// Pooled per-search working memory (visited stamps, beam heaps, batched
  /// kernel buffers) so concurrent searches stay allocation-free at steady
  /// state, mirroring the float tier's hot path.
  class ScratchPool {
   public:
    std::unique_ptr<Scratch> acquire(std::size_t n, std::size_t max_degree);
    void release(std::unique_ptr<Scratch> s);

   private:
    std::mutex mu_;
    std::vector<std::unique_ptr<Scratch>> free_;
  };

  void select_cache(const data::Dataset& rows,
                    std::span<const std::uint64_t> heat);
  /// Search-space distance of the decoded code row (squared L2 / 1 - ip).
  [[nodiscard]] float code_dist(const float* query,
                                std::size_t row) const noexcept;
  void code_dist_batch(const float* query, const std::uint32_t* rows,
                       std::size_t m, float* out) const noexcept;
  /// Re-rank candidates (search-space distances) and emit the top k in
  /// ranking space; bumps access counters.
  [[nodiscard]] std::vector<Neighbor> rerank_emit(
      const float* query, std::span<const std::uint32_t> cand_rows,
      std::span<const float> cand_dists, std::size_t k) const;

  SqSegmentParams params_;
  SqCodec codec_;
  std::size_t n_ = 0;
  std::vector<GlobalId> ids_;
  AlignedBuffer<std::uint8_t> codes_;  ///< n_ rows of codec_.code_stride()
  hnsw::FlatGraph graph_;

  /// Re-rank cache: float rows at Dataset padding, slot table row -> cache
  /// index (kInvalidLocalId = not cached).
  std::size_t n_cached_ = 0;
  std::size_t cache_stride_ = 0;
  AlignedBuffer<float> cache_rows_;
  std::vector<std::uint32_t> cache_slot_;

  mutable std::vector<std::atomic<std::uint32_t>> access_;
  mutable std::atomic<std::uint64_t> rerank_exact_{0};
  mutable std::atomic<std::uint64_t> rerank_coded_{0};
  mutable ScratchPool scratch_;
};

}  // namespace annsim::quant
