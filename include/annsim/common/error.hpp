#pragma once
/// \file error.hpp
/// \brief Error type and checked-invariant macros used across the library.

#include <stdexcept>
#include <string>
#include <sstream>

namespace annsim {

/// Exception thrown on violated preconditions and unrecoverable runtime
/// failures (bad file formats, dimension mismatches, protocol violations in
/// the simulated MPI runtime, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "ANNSIM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace annsim

/// Precondition / invariant check that stays on in release builds.
/// Use for API-boundary validation; hot inner loops should rely on tests.
#define ANNSIM_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr)) [[unlikely]]                                               \
      ::annsim::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define ANNSIM_CHECK_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) [[unlikely]] {                                           \
      std::ostringstream annsim_os_;                                      \
      annsim_os_ << msg;                                                  \
      ::annsim::detail::throw_check_failure(#expr, __FILE__, __LINE__,    \
                                            annsim_os_.str());            \
    }                                                                     \
  } while (0)
