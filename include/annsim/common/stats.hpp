#pragma once
/// \file stats.hpp
/// \brief Streaming statistics and percentile summaries for benchmark output.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace annsim {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / double(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double d = o.mean_ - mean_;
    const std::size_t n = n_ + o.n_;
    m2_ += o.m2_ + d * d * double(n_) * double(o.n_) / double(n);
    mean_ += d * double(o.n_) / double(n);
    n_ = n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Streaming geometric-bucket histogram for positive, latency-like samples.
///
/// Buckets grow by a constant factor (`growth`), so percentile estimates
/// carry a bounded *relative* error of at most `growth - 1` while memory
/// stays fixed — the standard layout for serving-latency telemetry, where
/// p50 may be microseconds and p999 may be seconds. Exact min/max/mean/sum
/// are tracked on the side, and `percentile(0)` / `percentile(100)` return
/// the exact observed extremes.
///
/// Samples below `lo` land in an underflow bucket, samples at or above the
/// top bucket in an overflow bucket; both interpolate against the exact
/// observed min/max, so out-of-range data degrades gracefully instead of
/// being dropped.
class Histogram {
 public:
  /// `lo`..`hi` is the resolvable range; `growth` the per-bucket factor.
  explicit Histogram(double lo = 1e-6, double hi = 1e6, double growth = 1.08);

  void add(double x) noexcept;

  /// Merge another histogram; layouts (lo/hi/growth) must match.
  void merge(const Histogram& o);

  [[nodiscard]] std::size_t count() const noexcept { return raw_.count(); }
  [[nodiscard]] double min() const noexcept { return raw_.min(); }
  [[nodiscard]] double max() const noexcept { return raw_.max(); }
  [[nodiscard]] double mean() const noexcept { return raw_.mean(); }
  [[nodiscard]] double sum() const noexcept { return raw_.sum(); }

  /// Estimated percentile, p in [0, 100] (throws annsim::Error outside).
  /// Empty histogram returns 0.0; p=0 and p=100 are the exact min/max.
  [[nodiscard]] double percentile(double p) const;

  /// Convenience tail quantiles for serving telemetry.
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
  [[nodiscard]] double p999() const { return percentile(99.9); }

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }

 private:
  [[nodiscard]] std::size_t bucket_of(double x) const noexcept;
  /// [lower, upper) value bounds of bucket b, clamped to observed extremes.
  [[nodiscard]] std::pair<double, double> bucket_bounds(std::size_t b) const noexcept;

  double lo_ = 0.0;
  double inv_log_growth_ = 0.0;
  double growth_ = 0.0;
  std::vector<std::uint64_t> counts_;  ///< [underflow, b0..bn-1, overflow]
  RunningStats raw_;                   ///< exact min/max/mean/sum on the side
};

/// Five-number summary + mean of a sample (used for Fig 4(b)-style
/// load-distribution reporting).
struct Summary {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0, mean = 0;
  std::size_t count = 0;
};

/// Linear-interpolated percentile of an unsorted sample (copies the input).
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Build a five-number summary of a sample.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Median of an unsorted sample (copies).
[[nodiscard]] double median(std::span<const double> sample);

/// Render a Summary as "min/p25/med/p75/max (mean)" for table output.
[[nodiscard]] std::string to_string(const Summary& s);

}  // namespace annsim
