#pragma once
/// \file stats.hpp
/// \brief Streaming statistics and percentile summaries for benchmark output.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace annsim {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / double(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double d = o.mean_ - mean_;
    const std::size_t n = n_ + o.n_;
    m2_ += o.m2_ + d * d * double(n_) * double(o.n_) / double(n);
    mean_ += d * double(o.n_) / double(n);
    n_ = n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Five-number summary + mean of a sample (used for Fig 4(b)-style
/// load-distribution reporting).
struct Summary {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0, mean = 0;
  std::size_t count = 0;
};

/// Linear-interpolated percentile of an unsorted sample (copies the input).
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Build a five-number summary of a sample.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Median of an unsorted sample (copies).
[[nodiscard]] double median(std::span<const double> sample);

/// Render a Summary as "min/p25/med/p75/max (mean)" for table output.
[[nodiscard]] std::string to_string(const Summary& s);

}  // namespace annsim
