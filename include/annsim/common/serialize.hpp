#pragma once
/// \file serialize.hpp
/// \brief Little binary (de)serialization layer for index save/load and for
/// packing messages exchanged through the simulated MPI runtime.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "annsim/common/error.hpp"

namespace annsim {

/// Appends POD values / vectors to a growable byte buffer.
class BinaryWriter {
 public:
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_span(std::span<const T> values) {
    write(static_cast<std::uint64_t>(values.size()));
    if (values.empty()) return;  // empty spans may carry a null data()
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    buf_.insert(buf_.end(), p, p + values.size_bytes());
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    write_span(std::span<const T>(v));
  }

  void write_string(const std::string& s) {
    write_span(std::span<const char>(s.data(), s.size()));
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads POD values back out of a byte buffer, bounds-checked.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> bytes) noexcept : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    ANNSIM_CHECK_MSG(pos_ + sizeof(T) <= bytes_.size(), "BinaryReader underflow");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    ANNSIM_CHECK_MSG(pos_ + n * sizeof(T) <= bytes_.size(), "BinaryReader underflow");
    std::vector<T> out(n);
    if (n != 0) {  // avoid zero-length memcpy from a null/end pointer
      std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return out;
  }

  /// Copy exactly `out.size()` elements into caller-owned storage (no
  /// length prefix, no allocation) — pairs with a preceding size read.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void read_into(std::span<T> out) {
    ANNSIM_CHECK_MSG(pos_ + out.size_bytes() <= bytes_.size(),
                     "BinaryReader underflow");
    if (!out.empty()) {
      std::memcpy(out.data(), bytes_.data() + pos_, out.size_bytes());
      pos_ += out.size_bytes();
    }
  }

  std::string read_string() {
    auto chars = read_vector<char>();
    return {chars.begin(), chars.end()};
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace annsim
