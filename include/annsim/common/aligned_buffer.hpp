#pragma once
/// \file aligned_buffer.hpp
/// \brief Cache-line / SIMD-register aligned storage for vector data.

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "annsim/common/error.hpp"

namespace annsim {

inline constexpr std::size_t kSimdAlignment = 64;  // AVX-512 / cache line

/// Owning, 64-byte-aligned, fixed-capacity float/byte buffer.
///
/// Dataset rows are stored in AlignedBuffer<float> so the SIMD distance
/// kernels can use aligned loads on every row when the stride is a multiple
/// of 16 floats.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count) { allocate(count); }

  AlignedBuffer(const AlignedBuffer& other) {
    allocate(other.size_);
    if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  /// Discard contents and reallocate to hold `count` elements (zero-filled).
  void reset(std::size_t count) {
    release();
    allocate(count);
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept { return {data_, size_}; }

 private:
  void allocate(std::size_t count) {
    size_ = count;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    const std::size_t bytes = (count * sizeof(T) + kSimdAlignment - 1) /
                              kSimdAlignment * kSimdAlignment;
    data_ = static_cast<T*>(std::aligned_alloc(kSimdAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    std::memset(data_, 0, bytes);
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace annsim
