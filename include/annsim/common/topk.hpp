#pragma once
/// \file topk.hpp
/// \brief Bounded max-heap collecting the k best (smallest-distance) candidates.
///
/// Every search routine in the library — brute force, HNSW, VP-tree, KD-tree,
/// and the master-side merge of partial results — funnels candidates through
/// TopK, so merge semantics are identical everywhere.

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/common/types.hpp"

namespace annsim {

/// Collects the k nearest candidates seen so far.
///
/// Internally a std::make_heap max-heap on Neighbor (worst candidate at the
/// top), so push is O(log k) and worst() is O(1) — the pruning bound used by
/// tree searches.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { ANNSIM_CHECK(k > 0); heap_.reserve(k); }

  /// Offer a candidate; keeps it only if it beats the current k-th best.
  /// Returns true when the candidate was kept.
  bool push(float dist, GlobalId id) { return push(Neighbor{dist, id}); }

  bool push(const Neighbor& n) {
    if (heap_.size() < k_) {
      heap_.push_back(n);
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    if (n < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = n;
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    return false;
  }

  /// Merge another result set (e.g. a partition's local k-NN) into this one.
  void merge(std::span<const Neighbor> other) {
    for (const auto& n : other) push(n);
  }

  /// Current pruning radius: distance of the worst kept candidate, or +inf
  /// while fewer than k candidates have been collected.
  [[nodiscard]] float worst_dist() const noexcept {
    return full() ? heap_.front().dist
                  : std::numeric_limits<float>::infinity();
  }

  [[nodiscard]] bool full() const noexcept { return heap_.size() == k_; }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Destructively extract results sorted by ascending distance.
  [[nodiscard]] std::vector<Neighbor> take_sorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

  /// Non-destructive sorted copy.
  [[nodiscard]] std::vector<Neighbor> sorted() const {
    std::vector<Neighbor> out(heap_);
    std::sort(out.begin(), out.end());
    return out;
  }

  void clear() noexcept { heap_.clear(); }

 private:
  std::size_t k_;
  std::vector<Neighbor> heap_;
};

/// Merge two already-sorted k-NN result lists into a sorted list of length
/// at most k. Used by the RMA accumulate merge op (the "atomic remote
/// read-update" of §IV-C1) and by the master's two-sided result merge.
[[nodiscard]] inline std::vector<Neighbor> merge_sorted_knn(
    std::span<const Neighbor> a, std::span<const Neighbor> b, std::size_t k) {
  std::vector<Neighbor> out;
  out.reserve(std::min(k, a.size() + b.size()));
  std::size_t i = 0, j = 0;
  while (out.size() < k && (i < a.size() || j < b.size())) {
    const bool take_a =
        j >= b.size() || (i < a.size() && a[i] < b[j]);
    const Neighbor& n = take_a ? a[i++] : b[j++];
    // Drop duplicate ids (a point replicated across partitions must appear
    // once in the merged result).
    if (!out.empty() && out.back().id == n.id) continue;
    out.push_back(n);
  }
  return out;
}

}  // namespace annsim
