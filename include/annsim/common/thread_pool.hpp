#pragma once
/// \file thread_pool.hpp
/// \brief Shared-memory worker pool modelling the OpenMP thread team inside a
/// compute node (Algorithm 4 spawns "a set T threads" per worker process).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace annsim {

/// Fixed-size pool executing void() jobs; parallel_for provides the
/// static-chunked loop idiom used for distance sweeps and ground-truth
/// computation.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue one job. Jobs must not throw (they run detached from callers).
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

  /// Run body(i) for i in [begin, end), split into size()*4 chunks, then wait.
  /// body receives (index). Safe to call from a non-pool thread only.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Run body(chunk_begin, chunk_end) over contiguous ranges, then wait.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace annsim
