#pragma once
/// \file backoff.hpp
/// \brief Exponential spin→yield→sleep backoff for polling loops.
///
/// The engine's master/worker loops poll Request::test() while juggling
/// other work, so they cannot park in a blocking wait — but a naive spin
/// burns a core per blocked rank, which multiplies badly under the checker's
/// sliced waits and in TSan CI jobs. Backoff keeps the first polls cheap
/// (pure spins, best latency when the message is already in flight), then
/// yields the timeslice, then sleeps with exponentially growing intervals
/// capped low enough that tail latency stays in the tens of microseconds.

#include <chrono>
#include <cstdint>
#include <thread>

namespace annsim {

class Backoff {
 public:
  /// `max_sleep` caps the exponential growth of the sleep phase.
  explicit Backoff(std::chrono::microseconds max_sleep =
                       std::chrono::microseconds(200)) noexcept
      : max_sleep_(max_sleep) {}

  /// Call once per failed poll. Phases: kSpins tight spins, then kYields
  /// sched yields, then sleeps doubling from 25us up to `max_sleep`.
  void pause() {
    ++attempts_;
    if (attempts_ <= kSpins) return;
    if (attempts_ <= kSpins + kYields) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(sleep_);
    sleep_ = std::min(sleep_ * 2, max_sleep_);
  }

  /// Call after a successful poll so the next blocked stretch starts cheap.
  void reset() noexcept {
    attempts_ = 0;
    sleep_ = kFirstSleep;
  }

 private:
  static constexpr std::uint32_t kSpins = 64;
  static constexpr std::uint32_t kYields = 16;
  static constexpr std::chrono::microseconds kFirstSleep{25};

  std::chrono::microseconds max_sleep_;
  std::chrono::microseconds sleep_ = kFirstSleep;
  std::uint32_t attempts_ = 0;
};

/// The repo's one sanctioned blocking sleep. Code under src/ that genuinely
/// must wait wall-clock time — window polls, liveness beacons, injected
/// fault latency — routes through here instead of calling
/// std::this_thread::sleep_for directly: the `raw-sleep-in-src` lint bans
/// raw sleeps so every wall-clock wait is auditable at this single choke
/// point (and greppable when a schedule-exploration run wonders where real
/// time leaks in).
inline void sleep_approx(std::chrono::microseconds d) {
  std::this_thread::sleep_for(d);
}

}  // namespace annsim
