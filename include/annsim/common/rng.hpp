#pragma once
/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// All randomness in annsim flows from these generators so that a run with a
/// fixed seed is bit-reproducible regardless of thread scheduling: each rank,
/// each partition build, and each generator stage derives its own stream via
/// SplitMix64 seeding.

#include <cstdint>
#include <cmath>
#include <numbers>

namespace annsim {

/// SplitMix64 — used to expand a user seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator (fast, high quality, tiny state).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Derive an independent child stream (e.g. one per rank or per thread).
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept {
    SplitMix64 sm(s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x1234567899ULL));
    Rng child(sm.next());
    return child;
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return double(next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [0, 1).
  float uniformf() noexcept { return float(next() >> 40) * 0x1.0p-24f; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double th = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(th);
    has_cached_ = true;
    return r * std::cos(th);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with rate lambda.
  double exponential(double lambda) noexcept {
    double u = 0.0;
    while (u == 0.0) u = uniform();
    return -std::log(u) / lambda;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace annsim
