#pragma once
/// \file types.hpp
/// \brief Fundamental value types shared by every annsim module.

#include <cstdint>
#include <compare>
#include <limits>

namespace annsim {

/// Identifier of a vector within the global (distributed) dataset.
using GlobalId = std::uint64_t;

/// Identifier of a vector within one partition / one local index.
using LocalId = std::uint32_t;

/// Identifier of a data partition produced by the space-partitioning tree.
using PartitionId = std::uint32_t;

/// Identifier of a (simulated) MPI rank / processing core.
using RankId = std::uint32_t;

inline constexpr GlobalId kInvalidGlobalId = std::numeric_limits<GlobalId>::max();
inline constexpr LocalId kInvalidLocalId = std::numeric_limits<LocalId>::max();
inline constexpr PartitionId kInvalidPartition = std::numeric_limits<PartitionId>::max();

/// One k-NN candidate: squared/true distance plus the global id of the point.
///
/// Ordering is by distance first (then id for determinism), so a max-heap of
/// Neighbor keeps the *worst* current candidate on top — the shape every
/// search routine in the library wants.
struct Neighbor {
  float dist = std::numeric_limits<float>::infinity();
  GlobalId id = kInvalidGlobalId;

  friend constexpr bool operator<(const Neighbor& a, const Neighbor& b) noexcept {
    return a.dist < b.dist || (a.dist == b.dist && a.id < b.id);
  }
  friend constexpr bool operator>(const Neighbor& a, const Neighbor& b) noexcept {
    return b < a;
  }
  friend constexpr bool operator<=(const Neighbor& a, const Neighbor& b) noexcept {
    return !(b < a);
  }
  friend constexpr bool operator>=(const Neighbor& a, const Neighbor& b) noexcept {
    return !(a < b);
  }
  friend constexpr bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace annsim
