#pragma once
/// \file timer.hpp
/// \brief Wall-clock timers used for calibration and benchmark reporting.

#include <chrono>
#include <cstdint>

namespace annsim {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across many start/stop intervals (phase accounting).
class PhaseTimer {
 public:
  void start() noexcept { timer_.reset(); running_ = true; }

  void stop() noexcept {
    if (running_) {
      total_ += timer_.seconds();
      ++intervals_;
      running_ = false;
    }
  }

  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t intervals() const noexcept { return intervals_; }

  void reset() noexcept { total_ = 0.0; intervals_ = 0; running_ = false; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  std::uint64_t intervals_ = 0;
  bool running_ = false;
};

/// RAII guard that adds its lifetime to a PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& t) noexcept : t_(t) { t_.start(); }
  ~ScopedPhase() { t_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& t_;
};

}  // namespace annsim
