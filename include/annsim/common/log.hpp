#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger (stderr), thread-safe, off by default in
/// tests/benches so output stays machine-parsable.

#include <sstream>
#include <string>

namespace annsim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace annsim

#define ANNSIM_LOG(level, expr)                                   \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::annsim::log_level())) {                \
      std::ostringstream annsim_log_os_;                          \
      annsim_log_os_ << expr;                                     \
      ::annsim::detail::log_emit(level, annsim_log_os_.str());    \
    }                                                             \
  } while (0)

#define ANNSIM_DEBUG(expr) ANNSIM_LOG(::annsim::LogLevel::kDebug, expr)
#define ANNSIM_INFO(expr) ANNSIM_LOG(::annsim::LogLevel::kInfo, expr)
#define ANNSIM_WARN(expr) ANNSIM_LOG(::annsim::LogLevel::kWarn, expr)
#define ANNSIM_ERROR(expr) ANNSIM_LOG(::annsim::LogLevel::kError, expr)
