#pragma once
/// \file vantage.hpp
/// \brief The vantage-point selection heuristic of Yianilos (SODA'93), shared
/// by the sequential VP-tree, the partition router, and the *distributed*
/// construction (Algorithm 1 of the paper runs this same routine per rank).

#include <cstddef>
#include <span>
#include <vector>

#include "annsim/common/rng.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::vptree {

/// Score of a candidate vantage point v over an evaluation set E:
/// the second moment of {d(v, e) : e in E} about the median of those
/// distances. A larger spread means better search pruning (§III-B).
[[nodiscard]] double vantage_spread(const float* candidate,
                                    const data::Dataset& data,
                                    std::span<const std::size_t> eval_rows,
                                    const simd::DistanceComputer& dist);

/// SelectVantagePointSerial(D', D) from the paper: evaluate each candidate
/// row against the evaluation rows and return the best candidate row index
/// (an index into `data`). Both spans must be non-empty.
[[nodiscard]] std::size_t select_vantage_point(
    const data::Dataset& data, std::span<const std::size_t> candidate_rows,
    std::span<const std::size_t> eval_rows, const simd::DistanceComputer& dist);

/// Convenience: sample `n_candidates` candidates and `n_eval` evaluation rows
/// from `rows` with `rng` and run the heuristic. Returns a row from `rows`.
[[nodiscard]] std::size_t select_vantage_point_sampled(
    const data::Dataset& data, std::span<const std::size_t> rows,
    std::size_t n_candidates, std::size_t n_eval,
    const simd::DistanceComputer& dist, Rng& rng);

}  // namespace annsim::vptree
