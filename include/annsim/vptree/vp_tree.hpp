#pragma once
/// \file vp_tree.hpp
/// \brief Classic Yianilos VP-tree: one point per node, exact k-NN with
/// triangle-inequality pruning. Serves as the metric-space reference index
/// and as the correctness oracle for the partition router.

#include <cstddef>
#include <vector>

#include "annsim/common/rng.hpp"
#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::vptree {

struct VpTreeParams {
  std::size_t vantage_candidates = 16;  ///< candidates sampled per node
  std::size_t vantage_sample = 64;      ///< eval rows sampled per node
  std::uint64_t seed = 7;
  simd::Metric metric = simd::Metric::kL2;
};

/// Exact k-NN index over a Dataset (referenced, not owned).
class VpTree {
 public:
  VpTree(const data::Dataset* data, VpTreeParams params);

  /// Exact k-NN; also reports how many distance evaluations were spent
  /// through `evals_out` when non-null (the pruning-quality metric the
  /// VP-vs-KD ablation reports).
  [[nodiscard]] std::vector<Neighbor> search(const float* query, std::size_t k,
                                             std::size_t* evals_out = nullptr) const;

  [[nodiscard]] std::size_t size() const noexcept { return data_->size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    std::size_t row = 0;  ///< vantage point (dataset row)
    float mu = 0.f;       ///< partition radius
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t build(std::vector<std::size_t>& rows, std::size_t begin,
                     std::size_t end, Rng& rng);
  void search_node(std::int32_t node, const float* query, class TopKRef& topk) const;

  const data::Dataset* data_;
  VpTreeParams params_;
  simd::DistanceComputer dist_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace annsim::vptree
