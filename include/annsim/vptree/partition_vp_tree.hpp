#pragma once
/// \file partition_vp_tree.hpp
/// \brief The master's routing structure: a VP-tree whose *leaves are data
/// partitions* (one per processing core), used to compute F(q) — the subset
/// of partitions whose local results suffice to reconstruct the global k-NN
/// (§III-B, §IV).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "annsim/common/rng.hpp"
#include "annsim/common/serialize.hpp"
#include "annsim/common/types.hpp"
#include "annsim/data/dataset.hpp"
#include "annsim/simd/distance.hpp"

namespace annsim::vptree {

struct PartitionVpTreeParams {
  /// Number of leaf partitions; must be a power of two (median splits halve
  /// the data, matching the paper's "half the processes build each child").
  std::size_t target_partitions = 8;
  /// Vantage-point candidates sampled per node (paper: 100).
  std::size_t vantage_candidates = 100;
  /// Evaluation rows sampled per candidate scoring pass.
  std::size_t vantage_sample = 256;
  std::uint64_t seed = 11;
  simd::Metric metric = simd::Metric::kL2;
};

/// Per-query routing decision, ordered most-promising first.
struct RoutingDecision {
  std::vector<PartitionId> partitions;
  /// Lower bound on the distance from the query to any point of each
  /// routed partition (same order as `partitions`).
  std::vector<float> lower_bounds;
};

struct PartitionBuildResult;

class PartitionVpTree {
 public:
  /// Sequential construction (the distributed variant in annsim::core must
  /// produce an equivalent tree; tests compare the two).
  static PartitionBuildResult build(const data::Dataset& data,
                                    const PartitionVpTreeParams& params);

  /// All partitions whose region intersects ball(query, radius) — the exact
  /// F(q) when `radius` is (an upper bound on) the k-th neighbor distance.
  [[nodiscard]] std::vector<PartitionId> route_ball(const float* query,
                                                    float radius) const;

  /// The single partition whose region contains the query.
  [[nodiscard]] PartitionId route_nearest(const float* query) const;

  /// Up to `max_partitions` partitions ordered by ascending lower-bound
  /// distance to the query (best-first traversal). This is the single-pass
  /// F(q) heuristic used in the throughput-oriented batched search; the
  /// number of probes trades recall for time exactly like IVF nprobe.
  [[nodiscard]] RoutingDecision route_topk(const float* query,
                                           std::size_t max_partitions) const;

  [[nodiscard]] std::size_t n_partitions() const noexcept { return n_partitions_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] simd::Metric metric() const noexcept { return params_.metric; }
  [[nodiscard]] const PartitionVpTreeParams& params() const noexcept { return params_; }

  /// Tree depth (root=0 depth of deepest leaf).
  [[nodiscard]] std::size_t depth() const;

  void serialize(BinaryWriter& w) const;
  static PartitionVpTree deserialize(BinaryReader& r);

  /// Internal node layout, exposed for the distributed builder in
  /// annsim::core which assembles a tree from per-level broadcast results.
  struct Node {
    std::vector<float> vp;        ///< vantage point (copied vector)
    float mu = 0.f;               ///< median split radius
    std::int32_t left = -1;       ///< child node index, -1 for leaf
    std::int32_t right = -1;
    PartitionId leaf = kInvalidPartition;  ///< set when this node is a leaf
  };

  /// Assemble a router directly from nodes (used by the distributed builder).
  PartitionVpTree(std::vector<Node> nodes, std::int32_t root,
                  std::size_t n_partitions, std::size_t dim,
                  PartitionVpTreeParams params);

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }

 private:
  PartitionVpTree() = default;

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t n_partitions_ = 0;
  std::size_t dim_ = 0;
  PartitionVpTreeParams params_;
};

/// Result of building: the router plus each row's partition assignment.
struct PartitionBuildResult {
  PartitionVpTree tree;
  std::vector<PartitionId> assignment;  ///< per dataset row
  std::vector<std::size_t> partition_sizes;
};

}  // namespace annsim::vptree
