/// Reproduces Figure 3: strong scaling of the total query time.
///  (a) SYN_1M (512-d) and SYN_10M (256-d), speedup normalized to 32 cores,
///      cores in {32, 64, ..., 1024};
///  (b) ANN_SIFT1B (128-d) and DEEP1B (96-d), speedup normalized to 256
///      cores, cores in {256, ..., 8192}.
///
/// Method (two planes, see DESIGN.md): the VP router is built for real on a
/// downscaled corpus at each core count and routes the real query set; the
/// discrete-event simulator replays those plans with per-partition HNSW
/// search costs calibrated on this host and scaled to the paper's partition
/// sizes. The executions correspond to the paper's configuration: one-sided
/// communication, no replication (r = 1), k = 10.

#include <cstdio>

#include "annsim/des/search_sim.hpp"
#include "bench_common.hpp"

namespace {

using namespace annsim;

struct DatasetSpec {
  const char* name;
  const char* recipe;
  std::size_t paper_n;       ///< dataset size the paper ran
  std::size_t downscaled_n;  ///< corpus size for real routing here
  std::size_t n_queries;     ///< paper's query count
  std::vector<std::size_t> cores;
  std::size_t base_cores;    ///< normalization point
};

void run_spec(const DatasetSpec& spec) {
  const auto& costs = bench::costs();
  auto w = data::make_by_name(spec.recipe, bench::scaled(spec.downscaled_n),
                              spec.n_queries, 97 + spec.paper_n);

  std::printf("\n%-12s (paper N=%zu, %zu-d, %zu queries, k=10, n_probe=4)\n",
              spec.name, spec.paper_n, w.base.dim(), spec.n_queries);
  std::printf("%8s %14s %10s %10s\n", "cores", "query time (s)", "speedup",
              "ideal");

  double base_time = 0.0;
  for (std::size_t cores : spec.cores) {
    auto routed = bench::route_workload(w.base, w.queries, cores, 4);
    const auto& plans = routed.plans;

    std::vector<double> cost(cores);
    for (std::size_t p = 0; p < cores; ++p) {
      cost[p] = costs.hnsw_query_seconds_at_scale(spec.paper_n / cores);
    }
    des::SearchSimConfig sim;
    sim.n_cores = cores;
    sim.dim = w.base.dim();
    sim.one_sided = true;
    sim.route_seconds = costs.route_seconds(cores);
    auto res = des::simulate_search(sim, plans, cost);

    if (cores == spec.base_cores) base_time = res.makespan_seconds;
    const double speedup =
        base_time > 0 ? base_time / res.makespan_seconds : 1.0;
    std::printf("%8zu %14.4f %10.2f %10.2f\n", cores, res.makespan_seconds,
                speedup, double(cores) / double(spec.base_cores));
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3(a): strong scaling, SYN_1M & SYN_10M (speedup vs 32 cores)");
  run_spec({"SYN_1M", "SYN_1M", 1'000'000, 32768, 10000,
            {32, 64, 128, 256, 512, 1024}, 32});
  run_spec({"SYN_10M", "SYN_10M", 10'000'000, 32768, 10000,
            {32, 64, 128, 256, 512, 1024}, 32});

  bench::print_header(
      "Figure 3(b): strong scaling, ANN_SIFT1B & DEEP1B (speedup vs 256 cores)");
  run_spec({"ANN_SIFT1B", "SIFT", 1'000'000'000, 131072, 10000,
            {256, 512, 1024, 2048, 4096, 8192}, 256});
  run_spec({"DEEP1B", "DEEP", 1'000'000'000, 131072, 10000,
            {256, 512, 1024, 2048, 4096, 8192}, 256});

  std::printf(
      "\nPaper reference: ~13x (SYN_1M) and ~18x (SYN_10M) at 1024/32 cores;\n"
      "~25x for both billion-scale datasets at 8192/256 cores (near-linear).\n");
  return 0;
}
