/// \file bench_quant.cpp
/// \brief SQ8 quantized-tier benchmark: recall vs memory vs QPS.
///
/// Sweeps the exact-float re-rank cache fraction over a quantized segment
/// and compares against the full-float frozen tier on the same corpus:
///
///   * graph-search QPS + recall@10 (beam over codes, exact re-rank),
///   * brute-force scan QPS (contiguous batched kernels; the memory-bound
///     case where 1 byte/dim beats 4 bytes/dim),
///   * resident bytes vs the full-float equivalent.
///
/// Plain binary so CI smoke jobs can gate on its exit status:
///
///   bench_quant [--n 60000] [--queries 200] [--out BENCH_quant.json]
///               [--mpi-check]
///
/// Exit is non-zero when the default-fraction (0.02) quantized tier misses
/// the acceptance bar: post-re-rank recall@10 < 0.9, or resident-memory
/// reduction < 3x, or (with --mpi-check) an engine-level quantized run's
/// usage-check report is not clean.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "annsim/check/check.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/quant/sq_segment.hpp"
#include "annsim/simd/distance.hpp"

namespace {

using namespace annsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  std::size_t n = 60000;
  std::size_t n_queries = 200;
  std::string out = "BENCH_quant.json";
  bool mpi_check = false;
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--n") == 0) {
      o.n = std::size_t(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      o.n_queries = std::size_t(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      o.out = next();
    } else if (std::strcmp(argv[i], "--mpi-check") == 0) {
      o.mpi_check = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

double recall_at_k(const std::vector<Neighbor>& got,
                   const std::vector<Neighbor>& want, std::size_t k) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k && i < got.size(); ++i) {
    for (std::size_t j = 0; j < k && j < want.size(); ++j) {
      if (got[i].id == want[j].id) {
        ++hits;
        break;
      }
    }
  }
  return double(hits) / double(k);
}

/// Full-float brute-force scan with the same blocked batched-kernel shape as
/// SqSegment::scan, so the float-vs-code comparison is kernel-for-kernel.
std::vector<Neighbor> float_scan(const data::Dataset& base, const float* query,
                                 std::size_t k) {
  constexpr std::size_t kBlock = 256;
  std::vector<float> dists(kBlock);
  std::vector<Neighbor> best;  // max-heap on (dist, id)
  for (std::size_t start = 0; start < base.size(); start += kBlock) {
    const std::size_t m = std::min(kBlock, base.size() - start);
    simd::l2_sq_batch(query, base.row(start), base.stride(), base.dim(),
                      nullptr, m, dists.data());
    for (std::size_t i = 0; i < m; ++i) {
      const Neighbor c{dists[i], base.id(start + i)};
      if (best.size() < k) {
        best.push_back(c);
        std::push_heap(best.begin(), best.end());
      } else if (c < best.front()) {
        std::pop_heap(best.begin(), best.end());
        best.back() = c;
        std::push_heap(best.begin(), best.end());
      }
    }
  }
  std::sort_heap(best.begin(), best.end());
  return best;
}

struct TierResult {
  double fraction = -1.0;  ///< < 0 marks the full-float baseline
  double search_qps = 0.0;
  double scan_qps = 0.0;
  double recall_search = 0.0;
  double recall_scan = 0.0;
  std::size_t resident_bytes = 0;
  std::size_t cached_rows = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  constexpr std::size_t kK = 10;
  constexpr std::size_t kEf = 96;
  constexpr double kDefaultFraction = 0.02;

  auto w = data::make_sift_like(opt.n, opt.n_queries, 2027);
  std::printf("bench_quant: n=%zu queries=%zu dim=%zu isa=%s\n", opt.n,
              opt.n_queries, w.base.dim(), simd::kernel_isa().c_str());

  auto t0 = Clock::now();
  const auto gt = data::brute_force_knn(w.base, w.queries, kK, simd::Metric::kL2);
  std::printf("  ground truth: %.2fs\n", seconds_since(t0));

  hnsw::HnswParams hp;
  hp.M = 16;
  hp.ef_construction = 100;
  hp.ef_search = kEf;
  ThreadPool pool;

  // --- full-float baseline: frozen HNSW over raw rows + blocked scan.
  TierResult base_r;
  {
    t0 = Clock::now();
    hnsw::HnswIndex index(&w.base, hp);
    index.build(&pool);
    std::printf("  float build: %.2fs\n", seconds_since(t0));

    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      (void)index.search(w.queries.row(q), kK, kEf);  // warm scratch
    }
    t0 = Clock::now();
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      base_r.recall_search +=
          recall_at_k(index.search(w.queries.row(q), kK, kEf), gt[q], kK);
    }
    base_r.search_qps = double(w.queries.size()) / seconds_since(t0);
    base_r.recall_search /= double(w.queries.size());

    t0 = Clock::now();
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      base_r.recall_scan +=
          recall_at_k(float_scan(w.base, w.queries.row(q), kK), gt[q], kK);
    }
    base_r.scan_qps = double(w.queries.size()) / seconds_since(t0);
    base_r.recall_scan /= double(w.queries.size());
    base_r.resident_bytes = w.base.stride() * w.base.size() * sizeof(float);
    std::printf("  float: search %.0f q/s (recall %.3f), scan %.0f q/s, "
                "%.1f MiB\n",
                base_r.search_qps, base_r.recall_search, base_r.scan_qps,
                double(base_r.resident_bytes) / (1024.0 * 1024.0));
  }

  // --- SQ8 tier: sweep the re-rank cache fraction.
  std::size_t float_bytes = 0;
  std::vector<TierResult> sq;
  for (const double fraction : {0.0, 0.01, 0.02, 0.05}) {
    quant::SqSegmentParams qp;
    qp.hnsw = hp;
    qp.float_cache_fraction = fraction;
    t0 = Clock::now();
    const auto seg = quant::SqSegment::build(w.base, qp, &pool);
    const double build_s = seconds_since(t0);
    float_bytes = seg->float_bytes();

    TierResult r;
    r.fraction = fraction;
    r.resident_bytes = seg->memory_bytes();
    r.cached_rows = seg->cached_rows();

    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      (void)seg->search(w.queries.row(q), kK, kEf);  // warm scratch
    }
    t0 = Clock::now();
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      r.recall_search +=
          recall_at_k(seg->search(w.queries.row(q), kK, kEf), gt[q], kK);
    }
    r.search_qps = double(w.queries.size()) / seconds_since(t0);
    r.recall_search /= double(w.queries.size());

    t0 = Clock::now();
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      r.recall_scan += recall_at_k(seg->scan(w.queries.row(q), kK), gt[q], kK);
    }
    r.scan_qps = double(w.queries.size()) / seconds_since(t0);
    r.recall_scan /= double(w.queries.size());

    std::printf("  sq8 f=%.2f: build %.2fs, search %.0f q/s (recall %.3f), "
                "scan %.0f q/s (recall %.3f), %.1f MiB (%.2fx), %zu cached\n",
                fraction, build_s, r.search_qps, r.recall_search, r.scan_qps,
                r.recall_scan,
                double(r.resident_bytes) / (1024.0 * 1024.0),
                double(float_bytes) / double(r.resident_bytes), r.cached_rows);
    sq.push_back(r);
  }

  // --- engine-level run: quantized segmented partitions end to end, with
  // the MPI usage checker armed when requested.
  double engine_recall = 0.0;
  bool engine_check_clean = true;
  {
    core::EngineConfig cfg;
    cfg.n_workers = 4;
    cfg.n_probe = 4;
    cfg.threads_per_worker = 1;
    cfg.local_index = core::LocalIndexKind::kSegmented;
    cfg.quantize_frozen = true;
    cfg.float_cache_fraction = kDefaultFraction;
    cfg.hnsw = hp;
    if (opt.mpi_check) {
      cfg.mpi_check = true;
      cfg.check_fatal = false;
    }
    core::DistributedAnnEngine engine(&w.base, cfg);
    engine.build();
    const auto results = engine.search(w.queries, kK, kEf);
    for (std::size_t q = 0; q < results.size(); ++q) {
      engine_recall += recall_at_k(results[q], gt[q], kK);
    }
    engine_recall /= double(results.size());
    const auto cs = engine.compression_stats();
    std::printf("  engine (quantized, %zu workers): recall %.3f, %.2fx "
                "compression, %zu cached rows\n",
                cfg.n_workers, engine_recall, cs.compression_ratio(),
                cs.quant_cached_rows);
    if (opt.mpi_check) {
      const auto rep = engine.check_report();
      engine_check_clean = rep.clean();
      std::printf("  mpi-check [quant-engine]: %s\n",
                  check::to_string(rep).c_str());
    }
  }

  // --- gates on the default-fraction configuration.
  const auto gated = *std::find_if(sq.begin(), sq.end(), [&](const TierResult& r) {
    return r.fraction == kDefaultFraction;
  });
  const double reduction = double(float_bytes) / double(gated.resident_bytes);
  const double scan_ratio = gated.scan_qps / base_r.scan_qps;
  const bool recall_ok = gated.recall_search >= 0.9;
  const bool memory_ok = reduction >= 3.0;

  if (std::FILE* f = std::fopen(opt.out.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"quant\",\n");
    std::fprintf(f, "  \"kernel_isa\": \"%s\",\n", simd::kernel_isa().c_str());
    std::fprintf(f, "  \"n\": %zu,\n  \"dim\": %zu,\n  \"queries\": %zu,\n",
                 opt.n, w.base.dim(), opt.n_queries);
    std::fprintf(f, "  \"k\": %zu,\n  \"ef\": %zu,\n", kK, kEf);
    std::fprintf(f,
                 "  \"float_baseline\": {\"search_qps\": %.1f, "
                 "\"scan_qps\": %.1f, \"recall_at_10\": %.4f, "
                 "\"resident_bytes\": %zu},\n",
                 base_r.search_qps, base_r.scan_qps, base_r.recall_search,
                 base_r.resident_bytes);
    std::fprintf(f, "  \"sq8\": [\n");
    for (std::size_t i = 0; i < sq.size(); ++i) {
      const auto& r = sq[i];
      std::fprintf(f,
                   "    {\"float_cache_fraction\": %.2f, \"search_qps\": %.1f, "
                   "\"scan_qps\": %.1f, \"recall_at_10\": %.4f, "
                   "\"scan_recall_at_10\": %.4f, \"resident_bytes\": %zu, "
                   "\"memory_reduction\": %.3f, \"cached_rows\": %zu}%s\n",
                   r.fraction, r.search_qps, r.scan_qps, r.recall_search,
                   r.recall_scan, r.resident_bytes,
                   double(float_bytes) / double(r.resident_bytes),
                   r.cached_rows, i + 1 < sq.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"engine\": {\"recall_at_10\": %.4f, "
                 "\"mpi_check_clean\": %s},\n",
                 engine_recall, engine_check_clean ? "true" : "false");
    std::fprintf(f,
                 "  \"gates\": {\"fraction\": %.2f, \"recall_at_10\": %.4f, "
                 "\"memory_reduction\": %.3f, \"scan_qps_ratio\": %.3f, "
                 "\"recall_ok\": %s, \"memory_ok\": %s}\n",
                 kDefaultFraction, gated.recall_search, reduction, scan_ratio,
                 recall_ok ? "true" : "false", memory_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", opt.out.c_str());
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", opt.out.c_str());
    return 2;
  }

  int rc = 0;
  if (!recall_ok) {
    std::fprintf(stderr,
                 "FAIL: post-re-rank recall@10 %.4f < 0.9 at fraction %.2f\n",
                 gated.recall_search, kDefaultFraction);
    rc = 1;
  }
  if (!memory_ok) {
    std::fprintf(stderr, "FAIL: memory reduction %.2fx < 3x\n", reduction);
    rc = 1;
  }
  if (!engine_check_clean) {
    std::fprintf(stderr, "FAIL: quantized engine run left a dirty mpi-check "
                         "report\n");
    rc = 1;
  }
  std::printf("  scan QPS ratio sq8/float at fraction %.2f: %.2fx\n",
              kDefaultFraction, scan_ratio);
  return rc;
}
