/// Microbenchmarks (google-benchmark) of the computational kernels the
/// system is built on: SIMD distance functions, the top-k heap, HNSW
/// insert/search, VP routing, and the one-sided slot merge. These back the
/// calibration constants the performance model uses.

#include <benchmark/benchmark.h>

#include "annsim/common/rng.hpp"
#include "annsim/common/topk.hpp"
#include "annsim/core/protocol.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/simd/distance.hpp"
#include "annsim/vptree/partition_vp_tree.hpp"

namespace {

using namespace annsim;

std::vector<float> random_vec(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = float(rng.normal());
  return v;
}

void BM_L2SqDispatched(benchmark::State& state) {
  const auto dim = std::size_t(state.range(0));
  auto a = random_vec(dim, 1), b = random_vec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::l2_sq(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_L2SqDispatched)->Arg(16)->Arg(96)->Arg(128)->Arg(960);

void BM_L2SqScalar(benchmark::State& state) {
  const auto dim = std::size_t(state.range(0));
  auto a = random_vec(dim, 1), b = random_vec(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::l2_sq_scalar(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_L2SqScalar)->Arg(128)->Arg(960);

void BM_InnerProduct(benchmark::State& state) {
  const auto dim = std::size_t(state.range(0));
  auto a = random_vec(dim, 3), b = random_vec(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::inner_product(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_InnerProduct)->Arg(96)->Arg(128);

/// Scattered one-to-many distances, sized like an HNSW beam expansion
/// (range(0) = neighbors per expansion, 128-d rows from a 16k corpus).
/// Compare against BM_BeamExpansionPairwise to see the batching win.
void BM_BeamExpansionBatched(benchmark::State& state) {
  static auto w = data::make_sift_like(16384, 1, 21);
  const auto n = std::size_t(state.range(0));
  auto q = random_vec(w.base.dim(), 22);
  Rng rng(23);
  std::vector<std::uint32_t> ids(n);
  std::vector<float> out(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& id : ids) id = std::uint32_t(rng.uniform_below(w.base.size()));
    state.ResumeTiming();
    simd::l2_sq_batch(q.data(), w.base.row(0), w.base.stride(), w.base.dim(),
                      ids.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(n));
}
BENCHMARK(BM_BeamExpansionBatched)->Arg(8)->Arg(32)->Arg(64);

void BM_BeamExpansionPairwise(benchmark::State& state) {
  static auto w = data::make_sift_like(16384, 1, 21);
  const auto n = std::size_t(state.range(0));
  auto q = random_vec(w.base.dim(), 22);
  Rng rng(23);
  std::vector<std::uint32_t> ids(n);
  std::vector<float> out(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& id : ids) id = std::uint32_t(rng.uniform_below(w.base.size()));
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = simd::l2_sq(q.data(), w.base.row(ids[i]), w.base.dim());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(n));
}
BENCHMARK(BM_BeamExpansionPairwise)->Arg(8)->Arg(32)->Arg(64);

/// Contiguous one-to-many scan over the whole corpus — the BruteForceIndex
/// inner loop (squared-L2 space, rows prefetched ahead).
void BM_L2SqBatchContiguous(benchmark::State& state) {
  static auto w = data::make_sift_like(8192, 1, 24);
  auto q = random_vec(w.base.dim(), 25);
  std::vector<float> out(w.base.size());
  for (auto _ : state) {
    simd::l2_sq_batch(q.data(), w.base.row(0), w.base.stride(), w.base.dim(),
                      nullptr, w.base.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(w.base.size()));
}
BENCHMARK(BM_L2SqBatchContiguous);

void BM_TopKPush(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> values(4096);
  for (auto& v : values) v = rng.uniformf();
  std::size_t i = 0;
  TopK topk(10);
  for (auto _ : state) {
    topk.push(values[i & 4095], GlobalId(i));
    ++i;
  }
}
BENCHMARK(BM_TopKPush);

void BM_BruteForceScan(benchmark::State& state) {
  static auto w = data::make_sift_like(8192, 16, 11);
  const simd::DistanceComputer dist(simd::Metric::kL2, w.base.dim());
  std::size_t q = 0;
  for (auto _ : state) {
    TopK topk(10);
    const float* qv = w.queries.row(q % w.queries.size());
    for (std::size_t i = 0; i < w.base.size(); ++i) {
      topk.push(dist(qv, w.base.row(i)), w.base.id(i));
    }
    benchmark::DoNotOptimize(topk);
    ++q;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(w.base.size()));
}
BENCHMARK(BM_BruteForceScan);

/// The actual BruteForceIndex path: blocked batched kernels in squared-L2
/// space, sqrt deferred to the k emitted results (vs the per-row sqrt +
/// dispatch of BM_BruteForceScan above).
void BM_BruteForceIndexScan(benchmark::State& state) {
  static auto w = data::make_sift_like(8192, 16, 11);
  const hnsw::BruteForceIndex index(&w.base, simd::Metric::kL2);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.search(w.queries.row(q % w.queries.size()), 10));
    ++q;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(w.base.size()));
}
BENCHMARK(BM_BruteForceIndexScan);

hnsw::HnswIndex& shared_index() {
  static auto w = data::make_sift_like(16384, 64, 12);
  static hnsw::HnswIndex index = [] {
    hnsw::HnswParams p;
    p.M = 16;
    p.ef_construction = 100;
    hnsw::HnswIndex idx(&w.base, p);
    idx.build();
    return idx;
  }();
  return index;
}

void BM_HnswSearch(benchmark::State& state) {
  auto& index = shared_index();
  static auto queries = data::make_sift_like(256, 64, 13).queries;
  const auto ef = std::size_t(state.range(0));
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.search(queries.row(q % queries.size()), 10, ef));
    ++q;
  }
}
BENCHMARK(BM_HnswSearch)->Arg(16)->Arg(64)->Arg(256);

void BM_HnswInsert(benchmark::State& state) {
  static auto w = data::make_sift_like(200000, 1, 14);
  hnsw::HnswParams p;
  p.M = 16;
  p.ef_construction = 100;
  hnsw::HnswIndex index(&w.base, p);
  LocalId next = 0;
  for (auto _ : state) {
    index.insert(next++);
    if (next == w.base.size()) {
      state.SkipWithError("corpus exhausted");
      break;
    }
  }
}
BENCHMARK(BM_HnswInsert)->Iterations(20000);

void BM_VpRouteTopk(benchmark::State& state) {
  static auto w = data::make_sift_like(32768, 256, 15);
  static auto built = [] {
    vptree::PartitionVpTreeParams params;
    params.target_partitions = 1024;
    params.vantage_candidates = 8;
    params.vantage_sample = 64;
    return vptree::PartitionVpTree::build(w.base, params);
  }();
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        built.tree.route_topk(w.queries.row(q % w.queries.size()), 4));
    ++q;
  }
}
BENCHMARK(BM_VpRouteTopk);

void BM_SlotMerge(benchmark::State& state) {
  const core::SlotLayout layout{10};
  Rng rng(16);
  std::vector<Neighbor> local(10);
  for (std::size_t i = 0; i < local.size(); ++i) {
    local[i] = {rng.uniformf(), GlobalId(i)};
  }
  std::sort(local.begin(), local.end());
  const auto update = core::encode_slot_update(local, layout);
  std::vector<std::byte> slot(layout.slot_bytes());
  const auto merge = core::knn_slot_merge(layout);
  for (auto _ : state) {
    merge(slot, update);
    benchmark::DoNotOptimize(slot.data());
  }
}
BENCHMARK(BM_SlotMerge);

}  // namespace

BENCHMARK_MAIN();
