/// Reproduces Table III: total search times of our VP+HNSW method vs the
/// PANDA-style distributed KD-tree [1]:
///   ANN_SIFT1B @ 8192 cores: 6.3 s vs 85.6 s (13.6x), recall 0.88
///   DEEP1B     @ 8192 cores: 7.1 s vs 80.9 s (11.4x), recall 0.85
///   ANN_GIST1M @ 24 cores:   0.54 s vs 4.6 s (8.5x),  recall 0.91
///
/// Functional plane: both engines run for real on the simulated MPI runtime
/// over a downscaled corpus, in the paper's F(q) semantics (the sufficient
/// partition set for exact reconstruction) — wall-clock plus measured recall.
///
/// Model plane: both routers route the real query set with ball radii
/// *rescaled to billion-point density*. On a downscaled corpus the k-th
/// neighbor sits much farther out than at 10^9 points; we estimate the
/// data's intrinsic dimensionality from the ground-truth distance profile
/// (r_k ~ k^(1/d)) and shrink each query's radius by
/// (n_downscaled / n_paper)^(1/d_int). This is precisely the regime that
/// separates the two trees: a smaller metric ball escapes most VP spheres,
/// while KD cells — axis-bounded in only log2(P) of the 96-960 dimensions —
/// keep intersecting it. Local costs come from the calibrated model (HNSW
/// beam search vs exact SIMD scan).

#include <cmath>
#include <cstdio>

#include "annsim/common/timer.hpp"
#include "annsim/data/analysis.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/core/kd_engine.hpp"
#include "annsim/des/search_sim.hpp"
#include "bench_common.hpp"

namespace {

using namespace annsim;

struct Spec {
  const char* name;
  const char* recipe;
  std::size_t paper_n;
  std::size_t paper_cores;  ///< power-of-two stand-in for the paper's count
  std::size_t downscaled_n;
  std::size_t n_queries;    ///< paper query count
  double beam;              ///< paper-scale beam ratio (recall tuning)
};

void functional_plane(const Spec& spec) {
  auto w = data::make_by_name(spec.recipe, bench::scaled(spec.downscaled_n),
                              256, 333);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);

  // Two operating points for our engine: the throughput configuration
  // (single-pass routing, few probes — recall near the paper's 0.85-0.91)
  // and the exact F(q) configuration (two-phase sufficient-set routing).
  core::EngineConfig cfg;
  cfg.n_workers = 16;
  cfg.n_probe = 6;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 16;
  cfg.hnsw.ef_construction = 100;
  cfg.hnsw.ef_search = 96;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 64;
  core::DistributedAnnEngine ours(&w.base, cfg);
  ours.build();

  auto cfg_exact = cfg;
  cfg_exact.exact_routing = true;
  cfg_exact.one_sided = false;  // exact routing needs the two-phase protocol
  core::DistributedAnnEngine ours_exact(&w.base, cfg_exact);
  ours_exact.build();

  core::KdEngineConfig kcfg;
  kcfg.n_workers = 16;
  core::DistributedKdEngine kd(&w.base, kcfg);
  kd.build();

  WallTimer t1;
  core::SearchStats ost;
  auto res = ours.search(w.queries, 10, 0, &ost);
  const double ours_s = t1.seconds();
  WallTimer t1e;
  auto res_exact = ours_exact.search(w.queries, 10);
  const double exact_s = t1e.seconds();
  WallTimer t2;
  core::KdSearchStats kst;
  auto kres = kd.search(w.queries, 10, &kst);
  const double kd_s = t2.seconds();
  (void)kres;

  std::printf("%-12s %10.3f %8.2f %12.3f %8.2f %10.3f %9.1fx\n", spec.name,
              ours_s, data::mean_recall(res, gt, 10), exact_s,
              data::mean_recall(res_exact, gt, 10), kd_s, kd_s / ours_s);
}

void model_plane(const Spec& spec) {
  const auto& costs = bench::costs();
  const std::size_t P = spec.paper_cores;
  auto w = data::make_by_name(spec.recipe, bench::scaled(spec.downscaled_n),
                              512, 334);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);

  const double d_int = data::intrinsic_dimension(gt, w.base.dim());
  const double radius_scale =
      data::density_radius_scale(w.base.size(), spec.paper_n, d_int);

  // --- routers on the same downscaled corpus.
  auto routed = bench::route_workload(w.base, w.queries, P, 1);
  std::vector<PartitionId> assignment;
  auto kd_tree = kdtree::PartitionKdTree::build(
      w.base, {.target_partitions = P}, &assignment);

  std::vector<std::vector<PartitionId>> vp_plans(w.queries.size());
  std::vector<std::vector<PartitionId>> kd_plans(w.queries.size());
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    const float radius = gt[q].back().dist * float(radius_scale);
    vp_plans[q] = routed.tree.route_ball(w.queries.row(q), radius);
    kd_plans[q] = kd_tree.route_ball(w.queries.row(q), radius);
  }
  auto vp_tiled = bench::tile_plans(vp_plans, spec.n_queries);
  auto kd_tiled = bench::tile_plans(kd_plans, spec.n_queries);

  // --- local search costs at the paper's partition size. The calibration
  // corpus is 128-d; distance-evaluation work scales linearly with dim for
  // both methods. Exact KD search at high dimension degenerates toward a
  // full scan (the functional plane measures scan fractions near 1).
  const double dim_factor = double(w.base.dim()) / 128.0;
  std::vector<double> our_cost(
      P, dim_factor *
             costs.hnsw_query_seconds_at_scale(spec.paper_n / P, spec.beam));
  std::vector<double> kd_cost(
      P, dim_factor * costs.exact_search_seconds_at_scale(
                          spec.paper_n / P, /*scan_fraction=*/0.8));

  des::SearchSimConfig sim;
  sim.n_cores = P;
  sim.dim = w.base.dim();
  sim.route_seconds = costs.route_seconds(P);
  const auto ours = des::simulate_search(sim, vp_tiled, our_cost);
  const auto kd = des::simulate_search(sim, kd_tiled, kd_cost);

  std::printf(
      "%-12s %10.2f %12.2f %9.1fx   (d_int %.1f, parts/query %.0f vs %.0f of %zu)\n",
      spec.name, ours.makespan_seconds, kd.makespan_seconds,
      kd.makespan_seconds / ours.makespan_seconds, d_int,
      double(ours.total_jobs) / double(spec.n_queries),
      double(kd.total_jobs) / double(spec.n_queries), P);
}

}  // namespace

int main() {
  const Spec sift{"ANN_SIFT1B", "SIFT", 1'000'000'000, 8192, 65536, 10000, 8.0};
  const Spec deep{"DEEP1B", "DEEP", 1'000'000'000, 8192, 65536, 10000, 8.0};
  const Spec gist{"ANN_GIST1M", "GIST", 1'000'000, 16, 8192, 1000, 2.0};

  bench::print_header(
      "Table III (functional plane): measured wall-clock, downscaled, 16 workers");
  std::printf("%-12s %10s %8s %12s %8s %10s %9s\n", "dataset", "ours (s)",
              "recall", "exactFq (s)", "recall", "KD (s)", "speedup");
  functional_plane(sift);
  functional_plane(deep);
  functional_plane(gist);
  std::printf(
      "\nNote: at downscaled partition sizes an exact SIMD scan is cheap, so\n"
      "the wall-clock gap understates the paper's; the model plane below\n"
      "restores paper-scale partition sizes where the gap opens up.\n");

  bench::print_header(
      "Table III (model plane): paper-scale extrapolation via DES, "
      "density-rescaled F(q)");
  std::printf("%-12s %10s %12s %9s\n", "dataset", "ours (s)", "KD-tree (s)",
              "speedup");
  model_plane(sift);
  model_plane(deep);
  model_plane(gist);

  std::printf(
      "\nPaper reference: 6.3 vs 85.6 s (13.6x) SIFT1B@8192; 7.1 vs 80.9 s\n"
      "(11.4x) DEEP1B@8192; 0.54 vs 4.6 s (8.5x) GIST1M@24 cores (we run the\n"
      "GIST router at 16 partitions: power-of-two median splits).\n");
  return 0;
}
