#pragma once
/// \file bench_common.hpp
/// \brief Shared plumbing for the experiment-reproduction benches: workload
/// construction, routing-plan extraction, live calibration, and table
/// printing. Each bench binary regenerates one table/figure of the paper.
///
/// Scale knobs: every bench runs at a downscaled base size by default so the
/// whole harness finishes in minutes on one core. Set ANNSIM_BENCH_SCALE
/// (e.g. 4) to multiply the base sizes, and ANNSIM_BENCH_FAST=1 to shrink
/// them further for smoke runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "annsim/cluster/calibration.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/vptree/partition_vp_tree.hpp"

namespace annsim::bench {

inline double scale_factor() {
  if (const char* fast = std::getenv("ANNSIM_BENCH_FAST");
      fast != nullptr && fast[0] == '1') {
    return 0.25;
  }
  if (const char* s = std::getenv("ANNSIM_BENCH_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n) {
  auto v = std::size_t(double(n) * scale_factor());
  return std::max<std::size_t>(v, 1024);
}

/// Calibrate compute costs once per process on a SIFT-like corpus
/// (ANNSIM_BENCH_NO_CALIBRATE=1 falls back to the canned constants).
inline const cluster::CalibratedCosts& costs() {
  static const cluster::CalibratedCosts c = [] {
    if (const char* no = std::getenv("ANNSIM_BENCH_NO_CALIBRATE");
        no != nullptr && no[0] == '1') {
      return cluster::default_costs();
    }
    auto w = data::make_sift_like(20000, 64, 424242);
    cluster::CalibrationConfig cfg;
    cfg.small_n = 4000;
    cfg.large_n = 16000;
    cfg.n_queries = 32;
    return cluster::calibrate(w.base, w.queries, cfg);
  }();
  return c;
}

/// Build the VP router over `base` at `n_partitions` and route every query
/// with `n_probe` best-first probes — the plans the DES replays.
struct RoutedWorkload {
  vptree::PartitionVpTree tree;
  std::vector<PartitionId> assignment;
  std::vector<std::size_t> partition_sizes;
  std::vector<std::vector<PartitionId>> plans;
};

inline RoutedWorkload route_workload(const data::Dataset& base,
                                     const data::Dataset& queries,
                                     std::size_t n_partitions,
                                     std::size_t n_probe,
                                     std::uint64_t seed = 11) {
  vptree::PartitionVpTreeParams params;
  params.target_partitions = n_partitions;
  // Keep vantage scoring cheap for large trees; quality is insensitive.
  params.vantage_candidates = 8;
  params.vantage_sample = 64;
  params.seed = seed;
  auto built = vptree::PartitionVpTree::build(base, params);
  RoutedWorkload out{std::move(built.tree), std::move(built.assignment),
                     std::move(built.partition_sizes), {}};
  out.plans.resize(queries.size());
  const std::size_t probes = std::min(n_probe, n_partitions);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out.plans[q] = out.tree.route_topk(queries.row(q), probes).partitions;
  }
  return out;
}

/// Replicate a downscaled plan set to `n_queries` entries (the paper uses
/// 10^4 queries; we reuse routed plans cyclically to reach that count).
inline std::vector<std::vector<PartitionId>> tile_plans(
    const std::vector<std::vector<PartitionId>>& plans, std::size_t n_queries) {
  std::vector<std::vector<PartitionId>> out;
  out.reserve(n_queries);
  for (std::size_t i = 0; i < n_queries; ++i) {
    out.push_back(plans[i % plans.size()]);
  }
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

}  // namespace annsim::bench
