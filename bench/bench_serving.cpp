/// Serving-plane benchmark: open-loop Poisson load against a built engine.
///
/// Not a paper figure — this measures the artifact the ROADMAP's production
/// north star needs: how the dynamic micro-batching policy (max_batch,
/// max_delay) trades tail latency against throughput when requests arrive
/// over time instead of as one offline batch, where the saturation point
/// sits, and what load shedding + deadlines do at overload.
///
/// Latency floor note: every micro-batch spins up the simulated MPI runtime
/// (P+1 threads), so absolute latencies carry ~1ms of runtime overhead a
/// real deployment would not pay; the policy *comparisons* are the result.

#include <algorithm>
#include <cstdio>

#include "annsim/core/engine.hpp"
#include "annsim/serve/load_gen.hpp"
#include "bench_common.hpp"

using namespace annsim;

namespace {

serve::LoadGenReport run_once(core::DistributedAnnEngine& engine,
                              const data::Dataset& queries,
                              serve::ServerConfig sc, serve::LoadGenConfig lg) {
  serve::QueryServer server(&engine, sc);
  auto rep = serve::run_load(server, queries, lg);
  server.stop();
  return rep;
}

std::size_t requests_for(double qps, double target_seconds) {
  const double n = qps * target_seconds * bench::scale_factor();
  return std::clamp<std::size_t>(std::size_t(n), 200, 4000);
}

}  // namespace

int main() {
  bench::print_header(
      "Serving: dynamic micro-batching under open-loop Poisson load");

  auto w = data::make_sift_like(bench::scaled(20000), 512, 42);

  core::EngineConfig cfg;
  cfg.n_workers = 4;
  cfg.n_probe = 2;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 12;
  cfg.hnsw.ef_construction = 100;
  core::DistributedAnnEngine engine(&w.base, cfg);
  engine.build();
  std::printf("engine: %zu x %zu-d, %zu workers, built in %.2fs\n",
              w.base.size(), w.base.dim(), cfg.n_workers,
              engine.build_stats().total_seconds);

  // --- 1. batching-policy sweep at fixed offered load -----------------------
  const double kSweepQps = 1500.0;
  std::printf("\n[1] batching policy @ %.0f q/s offered, k=10\n", kSweepQps);
  std::printf("%9s %10s | %9s %8s %8s %8s %8s | %10s %8s\n", "max_batch",
              "max_delay", "thpt q/s", "p50 ms", "p95 ms", "p99 ms", "p999 ms",
              "mean batch", "rejected");
  for (std::size_t mb : {std::size_t(1), std::size_t(8), std::size_t(32)}) {
    for (double md : {0.5, 2.0, 8.0}) {
      serve::ServerConfig sc;
      sc.max_batch = mb;
      sc.max_delay_ms = md;
      sc.queue_capacity = 512;
      serve::LoadGenConfig lg;
      lg.qps = kSweepQps;
      lg.n_requests = requests_for(kSweepQps, 1.0);
      lg.k = 10;
      lg.seed = 7;
      const auto rep = run_once(engine, w.queries, sc, lg);
      const auto& m = rep.metrics;
      std::printf("%9zu %8.1fms | %9.0f %8.3f %8.3f %8.3f %8.3f | %10.1f %8zu\n",
                  mb, md, m.throughput_qps, m.latency_p50_ms, m.latency_p95_ms,
                  m.latency_p99_ms, m.latency_p999_ms, m.batch_size.mean,
                  m.rejected);
    }
  }

  // --- 2. load sweep at fixed policy: saturation + rejection onset ----------
  std::printf("\n[2] load sweep (max_batch=32, max_delay=2ms, queue=64, "
              "reject on overflow)\n");
  std::printf("%11s | %9s %8s %8s %8s | %10s %8s %8s\n", "offered q/s",
              "thpt q/s", "p50 ms", "p95 ms", "p99 ms", "mean batch",
              "rejected", "depth max");
  for (double qps : {250.0, 1000.0, 4000.0, 16000.0}) {
    serve::ServerConfig sc;
    sc.max_batch = 32;
    sc.max_delay_ms = 2.0;
    sc.queue_capacity = 64;
    serve::LoadGenConfig lg;
    lg.qps = qps;
    lg.n_requests = requests_for(qps, 0.75);
    lg.k = 10;
    lg.seed = 13;
    const auto rep = run_once(engine, w.queries, sc, lg);
    const auto& m = rep.metrics;
    std::printf("%11.0f | %9.0f %8.3f %8.3f %8.3f | %10.1f %8zu %8.0f\n", qps,
                m.throughput_qps, m.latency_p50_ms, m.latency_p95_ms,
                m.latency_p99_ms, m.batch_size.mean, m.rejected,
                m.queue_depth.max);
  }

  // --- 3. deadlines at overload: timeouts instead of unbounded queueing -----
  std::printf("\n[3] per-request deadline under overload (deadline=25ms, "
              "8000 q/s offered)\n");
  {
    serve::ServerConfig sc;
    sc.max_batch = 32;
    sc.max_delay_ms = 2.0;
    sc.queue_capacity = 512;
    serve::LoadGenConfig lg;
    lg.qps = 8000.0;
    lg.n_requests = requests_for(8000.0, 0.5);
    lg.k = 10;
    lg.deadline_ms = 25.0;
    lg.seed = 19;
    const auto rep = run_once(engine, w.queries, sc, lg);
    std::printf("client: %zu ok, %zu expired, %zu rejected, %zu failed "
                "(every request completed)\n",
                rep.ok, rep.expired, rep.rejected, rep.failed);
    std::printf("%s\n", serve::to_string(rep.metrics).c_str());
  }

  return 0;
}
