/// Fault-tolerance sweep: what does replication buy when workers die?
///
/// For each replication factor r in {1, 2, 3}, a fault-free baseline search
/// is followed by chaos runs killing one worker at three points in the batch
/// (early / mid / late, expressed as the victim's delivered-op count before
/// it goes silent). Reported per cell: recall vs exact ground truth, batch
/// time, and the failover ledger (retries, failovers, degraded queries).
///
/// Expected shape: at r = 1 a death converts straight into degraded queries
/// and lost recall (bounded by how many plans touched the dead partition);
/// at r >= 2 recall matches the fault-free baseline exactly — the cost of a
/// death is retries plus one detection timeout, not answer quality.

#include <cstdio>

#include "annsim/core/engine.hpp"
#include "annsim/data/analysis.hpp"
#include "annsim/data/ground_truth.hpp"
#include "bench_common.hpp"

int main() {
  using namespace annsim;
  bench::print_header(
      "Fault tolerance: recall/latency under worker failure vs replication");

  const std::size_t n_base = bench::scaled(8192);
  const std::size_t n_queries = 128;
  const std::size_t k = 10;
  const std::size_t workers = 8;
  const int victim_rank = 2;  // worker 1
  const std::uint64_t kill_points[] = {2, 16, 64};

  auto w = data::make_sift_like(n_base, n_queries, 4242);
  auto gt = data::brute_force_knn(w.base, w.queries, k, simd::Metric::kL2);

  core::EngineConfig base_cfg;
  base_cfg.n_workers = workers;
  base_cfg.n_probe = 4;
  base_cfg.threads_per_worker = 1;
  base_cfg.hnsw.M = 12;
  base_cfg.hnsw.ef_construction = 96;

  std::printf("%zu base x %zu-d, %zu queries, k=%zu, %zu workers, "
              "kill = worker 1 after N delivered ops\n\n",
              w.base.size(), w.base.dim(), n_queries, k, workers);
  std::printf("%3s %12s %10s %9s %9s %9s %9s %10s\n", "r", "kill-after",
              "recall@10", "time(s)", "retries", "failover", "degraded",
              "vs clean");

  for (std::size_t r = 1; r <= 3; ++r) {
    auto cfg = base_cfg;
    cfg.replication = r;
    core::DistributedAnnEngine clean(&w.base, cfg);
    clean.build();
    core::SearchStats clean_st;
    auto clean_res = clean.search(w.queries, k, 0, &clean_st);
    const double clean_recall = data::mean_recall(clean_res, gt, k);
    std::printf("%3zu %12s %10.4f %9.3f %9s %9s %9s %10s\n", r, "none",
                clean_recall, clean_st.total_seconds, "-", "-", "-", "-");

    for (const std::uint64_t kill_after : kill_points) {
      auto chaos = cfg;
      chaos.result_timeout_ms = 100.0;
      chaos.fault.seed = 7;
      chaos.fault.kills.push_back({victim_rank, kill_after, mpi::kNeverFires});
      core::DistributedAnnEngine eng(&w.base, chaos);
      eng.build();
      core::SearchStats st;
      auto res = eng.search(w.queries, k, 0, &st);
      const double recall = data::mean_recall(res, gt, k);
      std::printf("%3zu %12llu %10.4f %9.3f %9llu %9llu %9llu %+9.4f\n", r,
                  static_cast<unsigned long long>(kill_after), recall,
                  st.total_seconds,
                  static_cast<unsigned long long>(st.retries),
                  static_cast<unsigned long long>(st.failovers),
                  static_cast<unsigned long long>(st.degraded_queries),
                  recall - clean_recall);
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: with r = 1 the dead partition is unrecoverable — every plan\n"
      "that touched it comes back degraded and recall drops. From r = 2 on,\n"
      "failover re-dispatches the lost jobs to live replicas and recall is\n"
      "identical to the fault-free run; the death costs only detection time.\n");
  return 0;
}
