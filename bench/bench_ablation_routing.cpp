/// Ablations of the space-partitioning choices (§III-B):
///  (1) VP-tree vs KD-tree routing: partitions whose region intersects the
///      exact k-NN ball, as a function of dimensionality — the pruning
///      behaviour behind Table III;
///  (2) the Yianilos vantage-point selection heuristic (second moment about
///      the median) vs random vantage points, measured by how many probes
///      the router needs to cover the true neighbors.

#include <cstdio>

#include "annsim/kdtree/kd_tree.hpp"
#include "bench_common.hpp"

namespace {

using namespace annsim;

void routing_vs_dimension() {
  bench::print_header(
      "Ablation 3: exact-search partition visits vs dimension (16 partitions)");
  std::printf("%8s %22s %22s\n", "dim", "VP-tree parts/query",
              "KD-tree parts/query");

  for (std::size_t dim : {8u, 32u, 128u, 512u}) {
    auto w = data::make_syn(bench::scaled(16384), dim, 100, 256, 888 + dim);
    auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);

    vptree::PartitionVpTreeParams vp_params;
    vp_params.target_partitions = 16;
    vp_params.vantage_candidates = 16;
    vp_params.vantage_sample = 64;
    auto vp = vptree::PartitionVpTree::build(w.base, vp_params);

    std::vector<PartitionId> assignment;
    auto kd = kdtree::PartitionKdTree::build(w.base, {.target_partitions = 16},
                                             &assignment);

    double vp_visits = 0, kd_visits = 0;
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      const float radius = gt[q].back().dist;
      vp_visits += double(vp.tree.route_ball(w.queries.row(q), radius).size());
      kd_visits += double(kd.route_ball(w.queries.row(q), radius).size());
    }
    std::printf("%8zu %22.2f %22.2f\n", dim,
                vp_visits / double(w.queries.size()),
                kd_visits / double(w.queries.size()));
  }
  std::printf(
      "\nBoth visit sets grow toward all partitions with dimension. On these\n"
      "clustered synthetics the two routers trade places at moderate dims —\n"
      "KD axis splits can align with cluster structure. The VP advantage the\n"
      "paper reports materializes at billion-point density, where the k-NN\n"
      "ball shrinks and escapes VP spheres but still crosses KD cells that\n"
      "are unbounded in most dimensions (see bench_table3's model plane).\n");
}

void radius_shrink() {
  // The Table III mechanism isolated: shrink the query ball (what growing
  // the corpus to 10^9 points does to the k-NN radius) and watch the visit
  // sets at two partition granularities. The VP/KD separation widens with
  // the partition count: fine-grained KD cells are axis-bounded in only
  // log2(P) of 128 dimensions and keep intersecting balls that fine-grained
  // VP spheres have long released.
  bench::print_header(
      "Ablation 3b: partition visits vs ball radius (SIFT-like, 128-d)");
  auto w = data::make_sift_like(bench::scaled(32768), 256, 890);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);

  for (std::size_t parts : {64u, 1024u}) {
    vptree::PartitionVpTreeParams vp_params;
    vp_params.target_partitions = parts;
    vp_params.vantage_candidates = 8;
    vp_params.vantage_sample = 64;
    auto vp = vptree::PartitionVpTree::build(w.base, vp_params);
    std::vector<PartitionId> assignment;
    auto kd = kdtree::PartitionKdTree::build(
        w.base, {.target_partitions = parts}, &assignment);

    std::printf("\nP = %zu partitions\n", parts);
    std::printf("%14s %18s %18s %10s\n", "radius scale", "VP parts/query",
                "KD parts/query", "KD/VP");
    for (double scale : {1.0, 0.7, 0.5, 0.35, 0.25}) {
      double vp_visits = 0, kd_visits = 0;
      for (std::size_t q = 0; q < w.queries.size(); ++q) {
        const float radius = gt[q].back().dist * float(scale);
        vp_visits +=
            double(vp.tree.route_ball(w.queries.row(q), radius).size());
        kd_visits += double(kd.route_ball(w.queries.row(q), radius).size());
      }
      vp_visits /= double(w.queries.size());
      kd_visits /= double(w.queries.size());
      std::printf("%14.2f %18.1f %18.1f %10.2f\n", scale, vp_visits, kd_visits,
                  kd_visits / vp_visits);
    }
  }
}

void vantage_heuristic() {
  bench::print_header(
      "Ablation 4: vantage-point heuristic vs random vantage points");
  auto w = data::make_sift_like(bench::scaled(16384), 512, 999);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);

  auto coverage_at = [&](const vptree::PartitionBuildResult& built,
                         std::size_t probes) {
    std::size_t hit = 0, total = 0;
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      auto dec = built.tree.route_topk(w.queries.row(q), probes);
      std::vector<char> visited(built.tree.n_partitions(), 0);
      for (auto p : dec.partitions) visited[p] = 1;
      for (const auto& nb : gt[q]) {
        ++total;
        if (visited[built.assignment[nb.id]] != 0) ++hit;
      }
    }
    return double(hit) / double(total);
  };

  vptree::PartitionVpTreeParams heuristic;
  heuristic.target_partitions = 32;
  heuristic.vantage_candidates = 100;  // the paper's candidate count
  heuristic.vantage_sample = 256;
  auto with_heuristic = vptree::PartitionVpTree::build(w.base, heuristic);

  vptree::PartitionVpTreeParams random = heuristic;
  random.vantage_candidates = 1;  // a single sampled candidate == random
  auto with_random = vptree::PartitionVpTree::build(w.base, random);

  std::printf("%10s %22s %22s\n", "n_probe", "heuristic coverage",
              "random-vp coverage");
  for (std::size_t probes : {1u, 2u, 4u, 8u, 16u}) {
    std::printf("%10zu %22.3f %22.3f\n", probes,
                coverage_at(with_heuristic, probes),
                coverage_at(with_random, probes));
  }
  std::printf(
      "\nCoverage = fraction of true 10-NN whose partition is probed. The\n"
      "spread-maximizing heuristic should dominate or match random vantage\n"
      "selection at every probe budget.\n");
}

}  // namespace

int main() {
  routing_vs_dimension();
  radius_shrink();
  vantage_heuristic();
  return 0;
}
