/// \file bench_hnsw_hotpath.cpp
/// \brief End-to-end hot-path benchmark for the frozen (FlatGraph) HNSW
/// search: QPS at several beam widths, ns per distance computation for the
/// batched kernels, recall@10 against a brute-force oracle, and a global
/// allocation counter proving the frozen search path performs no scratch
/// allocations in steady state (the only allocation per search is the
/// returned result vector itself).
///
/// Plain binary (no google-benchmark) so it can run in CI smoke jobs and
/// emit a machine-readable report:
///
///   bench_hnsw_hotpath [--n 50000] [--queries 500] [--out BENCH_hnsw.json]
///
/// Exit status is non-zero if the steady-state allocation budget (one
/// allocation per search) is exceeded, so CI catches scratch-pool
/// regressions without parsing the report.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/hnsw/hnsw_index.hpp"
#include "annsim/simd/distance.hpp"

// ---- global allocation counter -------------------------------------------
// Counts every operator-new in the process. The bench samples the counter
// around timed loops, so setup noise doesn't matter.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// --------------------------------------------------------------------------

namespace {

using namespace annsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  std::size_t n = 50000;
  std::size_t n_queries = 500;
  std::string out = "BENCH_hnsw.json";
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--n") == 0) {
      o.n = std::size_t(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      o.n_queries = std::size_t(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      o.out = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

struct EfResult {
  std::size_t ef;
  double qps;
  double recall_at_10;
  double allocs_per_search;
};

double recall_at_k(const std::vector<Neighbor>& got,
                   const std::vector<Neighbor>& want, std::size_t k) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k && i < got.size(); ++i) {
    for (std::size_t j = 0; j < k && j < want.size(); ++j) {
      if (got[i].id == want[j].id) {
        ++hits;
        break;
      }
    }
  }
  return double(hits) / double(k);
}

/// Time the scattered batched kernel the beam expansion uses; returns ns per
/// distance computation.
double measure_ns_per_distance(const data::Dataset& base, bool scattered) {
  Rng rng(321);
  std::vector<float> q(base.dim());
  for (auto& x : q) x = float(rng.normal());
  constexpr std::size_t kBeam = 32;
  std::vector<std::uint32_t> ids(kBeam);
  std::vector<float> out(scattered ? kBeam : base.size());
  const std::size_t reps = scattered ? 20000 : 200;
  std::size_t n_dists = 0;
  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    if (scattered) {
      for (auto& id : ids) id = std::uint32_t(rng.uniform_below(base.size()));
      simd::l2_sq_batch(q.data(), base.row(0), base.stride(), base.dim(),
                        ids.data(), kBeam, out.data());
      n_dists += kBeam;
    } else {
      simd::l2_sq_batch(q.data(), base.row(0), base.stride(), base.dim(),
                        nullptr, base.size(), out.data());
      n_dists += base.size();
    }
  }
  return seconds_since(t0) * 1e9 / double(n_dists);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  auto w = data::make_sift_like(opt.n, opt.n_queries, 2026);

  std::printf("bench_hnsw_hotpath: n=%zu queries=%zu dim=%zu isa=%s\n", opt.n,
              opt.n_queries, w.base.dim(), simd::kernel_isa().c_str());

  hnsw::HnswParams params;
  params.M = 16;
  params.ef_construction = 100;
  auto t0 = Clock::now();
  hnsw::HnswIndex index(&w.base, params);
  ThreadPool pool;
  index.build(&pool);
  const double build_s = seconds_since(t0);
  std::printf("  build: %.2fs (%zu nodes, frozen=%d)\n", build_s, index.size(),
              int(index.is_frozen()));

  t0 = Clock::now();
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  std::printf("  ground truth: %.2fs\n", seconds_since(t0));

  const double ns_scattered = measure_ns_per_distance(w.base, /*scattered=*/true);
  const double ns_contig = measure_ns_per_distance(w.base, /*scattered=*/false);
  std::printf("  ns/distance: %.2f scattered, %.2f contiguous\n", ns_scattered,
              ns_contig);

  // Steady-state allocation budget per search: the returned result vector.
  constexpr double kAllocBudgetPerSearch = 1.0;
  bool alloc_ok = true;

  std::vector<EfResult> results;
  for (const std::size_t ef : {std::size_t(16), std::size_t(64), std::size_t(128)}) {
    // Warm up scratch pool + caches.
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      (void)index.search(w.queries.row(q), 10, ef);
    }

    const std::size_t reps = 3;
    double recall_sum = 0.0;
    const std::uint64_t alloc0 = g_alloc_count.load(std::memory_order_relaxed);
    t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t q = 0; q < w.queries.size(); ++q) {
        auto res = index.search(w.queries.row(q), 10, ef);
        if (r == 0) recall_sum += recall_at_k(res, gt[q], 10);
      }
    }
    const double elapsed = seconds_since(t0);
    const std::uint64_t alloc1 = g_alloc_count.load(std::memory_order_relaxed);

    const double n_searches = double(reps) * double(w.queries.size());
    EfResult er;
    er.ef = ef;
    er.qps = n_searches / elapsed;
    er.recall_at_10 = recall_sum / double(w.queries.size());
    er.allocs_per_search = double(alloc1 - alloc0) / n_searches;
    results.push_back(er);
    if (er.allocs_per_search > kAllocBudgetPerSearch + 0.01) alloc_ok = false;

    std::printf("  ef=%-4zu qps=%-10.0f recall@10=%.4f allocs/search=%.3f\n",
                er.ef, er.qps, er.recall_at_10, er.allocs_per_search);
  }

  if (std::FILE* f = std::fopen(opt.out.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"hnsw_hotpath\",\n");
    std::fprintf(f, "  \"kernel_isa\": \"%s\",\n", simd::kernel_isa().c_str());
    std::fprintf(f, "  \"n\": %zu,\n  \"dim\": %zu,\n  \"queries\": %zu,\n",
                 opt.n, w.base.dim(), opt.n_queries);
    std::fprintf(f, "  \"M\": %zu,\n  \"ef_construction\": %zu,\n", params.M,
                 params.ef_construction);
    std::fprintf(f, "  \"build_seconds\": %.3f,\n", build_s);
    std::fprintf(f, "  \"ns_per_distance_scattered\": %.3f,\n", ns_scattered);
    std::fprintf(f, "  \"ns_per_distance_contiguous\": %.3f,\n", ns_contig);
    std::fprintf(f, "  \"alloc_budget_per_search\": %.1f,\n",
                 kAllocBudgetPerSearch);
    std::fprintf(f, "  \"scratch_alloc_free\": %s,\n",
                 alloc_ok ? "true" : "false");
    std::fprintf(f, "  \"search\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"ef\": %zu, \"qps\": %.1f, \"recall_at_10\": %.4f, "
                   "\"allocs_per_search\": %.3f}%s\n",
                   r.ef, r.qps, r.recall_at_10, r.allocs_per_search,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", opt.out.c_str());
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", opt.out.c_str());
    return 2;
  }

  if (!alloc_ok) {
    std::fprintf(stderr,
                 "FAIL: frozen search exceeded the steady-state allocation "
                 "budget (%.1f allocs/search)\n",
                 kAllocBudgetPerSearch);
    return 1;
  }
  return 0;
}
