/// Reproduces Figure 6: search recall vs total query time for ANN_SIFT1B on
/// 1024 cores, sweeping the HNSW connectivity parameter M over {8,16,32,64}
/// (default 16). The paper reaches near-perfect recall at M = 64 while
/// answering 10^4 queries in 167 s.
///
/// Recall is *measured* (never modeled): the full distributed engine runs on
/// a downscaled corpus at each M and is scored against exact ground truth.
/// The time axis comes from the DES at 1024 cores, with the per-M local
/// search cost measured on a real HNSW index and rescaled by the ln-n law.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "annsim/common/timer.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/des/search_sim.hpp"
#include "annsim/pq/ivfpq_index.hpp"
#include "bench_common.hpp"

int main() {
  using namespace annsim;
  bench::print_header(
      "Figure 6: recall vs total query time, SIFT1B @ 1024 cores, M sweep");

  const std::size_t cores = 1024;
  const std::size_t paper_n = 1'000'000'000;
  const auto& costs = bench::costs();

  auto w = data::make_sift_like(bench::scaled(16384), 512, 666);
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);

  // Routing plans are independent of M.
  auto big = data::make_sift_like(bench::scaled(65536), 1024, 667);
  auto routed = bench::route_workload(big.base, big.queries, cores, 4);
  auto plans = bench::tile_plans(routed.plans, 10000);

  std::printf("%6s %16s %10s %18s\n", "M", "query time (s)", "recall",
              "per-query local (us)");
  double recall_at_m64 = 0.0;
  for (std::size_t M : {8u, 16u, 32u, 64u}) {
    // --- measured recall through the full engine.
    // Recall must be HNSW-bound (the knob Fig 6 turns), not routing-bound:
    // probe generously and let the beam scale with M, as HNSW's default
    // ef tuning does.
    core::EngineConfig cfg;
    cfg.n_workers = 8;
    cfg.n_probe = 6;
    cfg.threads_per_worker = 1;
    cfg.hnsw.M = M;
    cfg.hnsw.ef_construction = std::max<std::size_t>(2 * M, 40);
    cfg.hnsw.ef_search = M;
    cfg.partitioner.vantage_candidates = 8;
    cfg.partitioner.vantage_sample = 64;
    core::DistributedAnnEngine eng(&w.base, cfg);
    eng.build();
    const double recall = data::mean_recall(eng.search(w.queries, 10), gt, 10);

    // --- measured per-query cost on a standalone index at this M.
    const std::size_t idx_n = std::min<std::size_t>(w.base.size(), 16384);
    data::Dataset sub = w.base.slice(0, idx_n);
    hnsw::HnswParams hp = cfg.hnsw;
    hnsw::HnswIndex index(&sub, hp);
    index.build();
    WallTimer t;
    const std::size_t reps = 256;
    for (std::size_t q = 0; q < reps; ++q) {
      (void)index.search(w.queries.row(q % w.queries.size()), 10, M);
    }
    const double per_query = t.seconds() / double(reps);
    // Rescale the measured cost to the paper-scale partition: ln-law growth
    // plus the memory-pressure factor (the beam itself is already the
    // measured per-M quantity, so no beam_ratio here).
    const double scaled_cost = per_query *
                               std::log(double(paper_n / cores)) /
                               std::log(double(idx_n)) *
                               costs.memory_factor(paper_n / cores);

    des::SearchSimConfig sim;
    sim.n_cores = cores;
    sim.dim = 128;
    sim.route_seconds = costs.route_seconds(cores);
    std::vector<double> cost(cores, scaled_cost);
    const auto res = des::simulate_search(sim, plans, cost);

    std::printf("%6zu %16.2f %10.3f %18.1f\n", M, res.makespan_seconds, recall,
                per_query * 1e6);
    if (M == 64) recall_at_m64 = recall;
  }
  std::printf(
      "\nPaper reference: recall rises with M (more memory, more time);\n"
      "M = 64 achieves near-perfect recall answering 10^4 queries in 167 s.\n");

  // --- §V-F's closing comparison: compressed single-node indexes (IVF-PQ,
  // refs [13][14]) answer quickly in little memory, but their recall
  // *plateaus* below the uncompressed system's — quantization error is a
  // floor no probe budget crosses. Unless, that is, the candidate list is
  // re-ranked with exact distances before emission: the codes then only have
  // to get the true neighbors *into* the overfetched candidate set, not
  // order them — the same recovery the SQ8 tier's float re-rank cache runs.
  bench::print_header(
      "Fig 6 addendum (§V-F): IVF-PQ recall ceiling on the same corpus");
  auto gt_ids = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  pq::IvfPqParams ip;
  ip.nlist = 64;
  ip.pq.m = 8;
  ip.pq.ks = 256;
  const auto ivf = pq::IvfPqIndex::build(w.base, ip);
  auto id_recall = [&](const data::KnnResults& results) {
    double sum = 0;
    for (std::size_t q = 0; q < results.size(); ++q) {
      std::size_t hits = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(10, results[q].size()); ++i) {
        for (std::size_t j = 0; j < gt_ids[q].size(); ++j) {
          if (results[q][i].id == gt_ids[q][j].id) { ++hits; break; }
        }
      }
      sum += double(hits) / 10.0;
    }
    return sum / double(results.size());
  };
  // Exact re-rank of an overfetched candidate list: take 4k coded
  // candidates, re-score them against the raw floats, keep the top k.
  auto rerank = [&](const float* query, std::vector<Neighbor> cands) {
    for (auto& nb : cands) {
      nb.dist = std::sqrt(
          simd::l2_sq(query, w.base.row(std::size_t(nb.id)), w.base.dim()));
    }
    std::sort(cands.begin(), cands.end());
    if (cands.size() > 10) cands.resize(10);
    return cands;
  };
  std::printf("%10s %10s %14s   (codes: %zu bytes/vector vs %zu raw)\n",
              "nprobe", "recall", "recall+rerank", ip.pq.m,
              w.base.dim() * sizeof(float));
  for (std::size_t nprobe : {1u, 4u, 16u, 64u}) {
    data::KnnResults results(w.queries.size());
    data::KnnResults reranked(w.queries.size());
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      results[q] = ivf.search(w.queries.row(q), 10, nprobe);
      reranked[q] = rerank(w.queries.row(q), ivf.search(w.queries.row(q), 40, nprobe));
    }
    std::printf("%10zu %10.3f %14.3f%s\n", nprobe, id_recall(results),
                id_recall(reranked),
                nprobe == ip.nlist ? "   <- ceiling: every list scanned" : "");
  }
  std::printf(
      "\nPaper: \"Compression methods ... cannot achieve near perfect "
      "recalls\";\nthe uncompressed engine above reaches %.3f at M = 64.\n"
      "Exact re-ranking lifts the coded plateau: ordering error is gone and\n"
      "only candidate-generation misses remain.\n",
      recall_at_m64);
  return 0;
}
