/// Reproduces Figure 4: replication-based load balancing on ANN_SIFT1B at
/// 8192 cores.
///  (a) total querying time for replication factors r = 1..5;
///  (b) the distribution of the number of queries processed per process.
///
/// Real VP routing of a clustered query set at 8192 partitions; the DES
/// replays Algorithm 5's workgroup round-robin at each r. The paper reports
/// up to ~11% improvement at r = 5 and a visibly tighter per-process
/// distribution.

#include <cstdio>

#include "annsim/common/rng.hpp"
#include "annsim/common/stats.hpp"
#include "annsim/des/search_sim.hpp"
#include "bench_common.hpp"

int main() {
  using namespace annsim;
  bench::print_header(
      "Figure 4: load balancing via partition replication (SIFT1B, 8192 cores)");

  const std::size_t cores = 8192;
  const std::size_t paper_n = 1'000'000'000;
  const auto& costs = bench::costs();

  // Real query workloads concentrate on popular regions; Fig 4(b)'s wide
  // per-process spread shows SIFT1B's query set is skewed. Model that by
  // drawing most queries near a small set of hot base points, with a
  // uniform remainder.
  auto w = data::make_sift_like(bench::scaled(131072), 10000, 4242);
  {
    Rng rng(77);
    const std::size_t n_hot = 96;
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      if (rng.uniform() >= 0.45) continue;  // majority stay uniform
      const std::size_t src =
          rng.uniform_below(n_hot) * (w.base.size() / n_hot);
      float* dst = w.queries.row(q);
      const float* s = w.base.row(src);
      for (std::size_t d = 0; d < w.base.dim(); ++d) {
        dst[d] = s[d] + float(rng.normal(0.0, 2.0));
      }
    }
  }
  auto routed = bench::route_workload(w.base, w.queries, cores, 4);
  const auto& plans = routed.plans;

  std::vector<double> cost(cores, costs.hnsw_query_seconds_at_scale(paper_n / cores));

  std::printf("%6s %18s %12s   %s\n", "r", "query time (s)", "vs r=1",
              "queries/process: min/p25/med/p75/max (mean)");
  double base_time = 0.0;
  for (std::size_t r = 1; r <= 5; ++r) {
    des::SearchSimConfig sim;
    sim.n_cores = cores;
    sim.dim = w.base.dim();
    sim.replication = r;
    sim.route_seconds = costs.route_seconds(cores);
    auto res = des::simulate_search(sim, plans, cost);
    if (r == 1) base_time = res.makespan_seconds;

    std::vector<double> counts;
    counts.reserve(res.jobs_per_core.size());
    for (auto c : res.jobs_per_core) counts.push_back(double(c));
    const auto s = summarize(counts);

    std::printf("%6zu %18.4f %+11.1f%%  p99 lat %.3fs   %s\n", r,
                res.makespan_seconds,
                (base_time - res.makespan_seconds) / base_time * 100.0,
                percentile(res.query_latency, 99.0), to_string(s).c_str());
  }
  std::printf(
      "\nPaper reference: performance improvement grows with r, reaching ~11%%\n"
      "at r = 5; the per-process query count range tightens with r.\n");
  return 0;
}
