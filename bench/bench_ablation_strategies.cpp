/// Ablations of the paper's design choices (§IV, §IV-C1):
///  (1) master-worker vs multiple-owner dispatch — the paper saw a small win
///      for multiple-owner that deteriorates with core count (and it cannot
///      be combined with replication-based load balancing);
///  (2) one-sided RMA result accumulation vs two-sided sends — the paper's
///      fix for the master-side result-collection bottleneck.

#include <cstdio>

#include "annsim/common/timer.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/des/search_sim.hpp"
#include "bench_common.hpp"

namespace {

using namespace annsim;

void strategies_functional() {
  bench::print_header(
      "Ablation 1 (functional): master-worker vs multiple-owner dispatch");
  auto w = data::make_sift_like(bench::scaled(16384), 1024, 777);

  std::printf("%8s %18s %18s\n", "workers", "master-worker (s)",
              "multiple-owner (s)");
  for (std::size_t workers : {4u, 8u, 16u}) {
    core::EngineConfig cfg;
    cfg.n_workers = workers;
    cfg.n_probe = 4;
    cfg.one_sided = false;  // multiple-owner supports two-sided only
    cfg.threads_per_worker = 1;
    cfg.hnsw.M = 12;
    cfg.hnsw.ef_construction = 80;
    cfg.partitioner.vantage_candidates = 8;
    cfg.partitioner.vantage_sample = 64;

    core::DistributedAnnEngine mw(&w.base, cfg);
    mw.build();
    cfg.strategy = core::DispatchStrategy::kMultipleOwner;
    core::DistributedAnnEngine owner(&w.base, cfg);
    owner.build();

    core::SearchStats s1, s2;
    (void)mw.search(w.queries, 10, 0, &s1);
    (void)owner.search(w.queries, 10, 0, &s2);
    std::printf("%8zu %18.3f %18.3f\n", workers, s1.total_seconds,
                s2.total_seconds);
  }
}

void onesided_model() {
  bench::print_header(
      "Ablation 2 (model): one-sided RMA vs two-sided result returns, SIFT1B");
  const auto& costs = bench::costs();
  auto w = data::make_sift_like(bench::scaled(131072), 10000, 778);

  std::printf("%8s %16s %16s %10s\n", "cores", "one-sided (s)",
              "two-sided (s)", "gain");
  for (std::size_t cores : {256u, 1024u, 4096u, 8192u}) {
    auto routed = bench::route_workload(w.base, w.queries, cores, 4);
    const auto& plans = routed.plans;
    std::vector<double> cost(cores,
                             costs.hnsw_query_seconds_at_scale(1'000'000'000 / cores));
    des::SearchSimConfig sim;
    sim.n_cores = cores;
    sim.dim = w.base.dim();
    sim.route_seconds = costs.route_seconds(cores);
    sim.one_sided = true;
    const auto one = des::simulate_search(sim, plans, cost);
    sim.one_sided = false;
    const auto two = des::simulate_search(sim, plans, cost);
    std::printf("%8zu %16.3f %16.3f %9.1f%%\n", cores, one.makespan_seconds,
                two.makespan_seconds,
                (two.makespan_seconds - one.makespan_seconds) /
                    two.makespan_seconds * 100.0);
  }
  std::printf(
      "\nThe two-sided master-side merge serializes result collection — the\n"
      "scalability bottleneck §IV-C1 reports; one-sided accumulation removes\n"
      "it, and the gain grows with core count (result volume).\n");
}

}  // namespace

int main() {
  strategies_functional();
  onesided_model();
  return 0;
}
