/// Reproduces Figure 5: breakdown of the total search time for 10^4 queries
/// on ANN_SIFT1B across core counts — computation vs MPI communication vs
/// other (idle/imbalance). The paper observes that nonblocking two-sided
/// dispatch plus one-sided result accumulation keeps the MPI share small.
///
/// The functional plane adds measured master/worker phase timings from the
/// real engine on downscaled data.

#include <cstdio>

#include "annsim/core/engine.hpp"
#include "annsim/des/search_sim.hpp"
#include "bench_common.hpp"

namespace {

using namespace annsim;

void model_plane() {
  bench::print_header(
      "Figure 5 (model plane): search time breakdown, SIFT1B, 10^4 queries");
  const auto& costs = bench::costs();
  auto w = data::make_sift_like(bench::scaled(131072), 10000, 555);

  std::printf("%8s %14s %14s %14s %10s\n", "cores", "computation %", "MPI comm %",
              "other %", "time (s)");
  for (std::size_t cores : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    auto routed = bench::route_workload(w.base, w.queries, cores, 4);
    const auto& plans = routed.plans;
    std::vector<double> cost(cores,
                             costs.hnsw_query_seconds_at_scale(1'000'000'000 / cores));
    des::SearchSimConfig sim;
    sim.n_cores = cores;
    sim.dim = w.base.dim();
    sim.route_seconds = costs.route_seconds(cores);
    auto res = des::simulate_search(sim, plans, cost);
    std::printf("%8zu %14.1f %14.2f %14.1f %10.3f\n", cores,
                res.computation_fraction * 100.0,
                res.communication_fraction * 100.0, res.idle_fraction * 100.0,
                res.makespan_seconds);
  }
  std::printf(
      "\nPaper reference: MPI communication occupies only a small share; the\n"
      "computation+communication share exceeds 90%% in many configurations.\n");
}

void functional_plane() {
  bench::print_header(
      "Figure 5 (functional plane): measured phase times, downscaled engine");
  auto w = data::make_sift_like(bench::scaled(16384), 512, 556);

  core::EngineConfig cfg;
  cfg.n_workers = 16;
  cfg.n_probe = 4;
  cfg.threads_per_worker = 1;
  cfg.hnsw.M = 16;
  cfg.hnsw.ef_construction = 100;
  cfg.partitioner.vantage_candidates = 8;
  cfg.partitioner.vantage_sample = 64;
  core::DistributedAnnEngine eng(&w.base, cfg);
  eng.build();

  core::SearchStats st;
  (void)eng.search(w.queries, 10, 0, &st);
  std::printf("total %.3fs | master: route %.4fs dispatch %.4fs merge %.4fs\n",
              st.total_seconds, st.master_route_seconds,
              st.master_dispatch_seconds, st.master_merge_seconds);
  std::printf("workers: compute %.3fs (sum), result-return %.4fs (sum)\n",
              st.worker_compute_seconds, st.worker_comm_seconds);
  const double comm = st.master_dispatch_seconds + st.master_merge_seconds +
                      st.worker_comm_seconds;
  std::printf("communication / computation ratio: %.3f\n",
              comm / (st.worker_compute_seconds + st.master_route_seconds));
}

}  // namespace

int main() {
  model_plane();
  functional_plane();
  return 0;
}
