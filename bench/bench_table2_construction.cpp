/// Reproduces Table II: distributed index construction times for ANN_SIFT1B
/// (total minutes and the HNSW-construction share) at 256..8192 cores.
///
/// Two planes: (1) the analytic construction model extrapolates to the
/// paper's 1B-point scale from kernel costs calibrated on this host;
/// (2) the *functional* distributed construction (Algorithms 1-2 on the
/// simulated MPI runtime + real local HNSW builds) runs on a downscaled
/// corpus to demonstrate the real code path end to end.

#include <cstdio>

#include "annsim/core/engine.hpp"
#include "annsim/des/construction_model.hpp"
#include "bench_common.hpp"

namespace {

using namespace annsim;

void model_plane() {
  bench::print_header(
      "Table II (model plane): ANN_SIFT1B construction, 1B points x 128-d");
  std::printf("%8s %14s %22s %14s\n", "cores", "Total (min)",
              "HNSW construction (min)", "other (min)");

  des::ConstructionModelConfig cfg;
  cfg.n_points = 1'000'000'000;
  cfg.dim = 128;
  cfg.costs = bench::costs();
  for (std::size_t cores : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    cfg.n_cores = cores;
    const auto est = des::estimate_construction(cfg);
    std::printf("%8zu %14.1f %22.1f %14.1f\n", cores, est.total_seconds / 60.0,
                est.hnsw_seconds / 60.0,
                (est.total_seconds - est.hnsw_seconds) / 60.0);
  }
  std::printf(
      "\nPaper reference (minutes): 256:21.5/17.6  512:20.1/14.8  "
      "1024:18.3/12.4\n2048:16.5/9.8  4096:15.2/7.8  8192:14.7/4.3 "
      "(total/HNSW)\n");
}

void functional_plane() {
  bench::print_header(
      "Table II (functional plane): real distributed construction, "
      "downscaled");
  const std::size_t n = bench::scaled(32768);
  auto w = data::make_sift_like(n, 16, 2121);
  std::printf("corpus: %zu points x 128-d (SIFT-like)\n", n);
  std::printf("%8s %12s %16s %16s\n", "workers", "total (s)", "VP tree (s)",
              "HNSW (s)");

  for (std::size_t workers : {4u, 8u, 16u}) {
    core::EngineConfig cfg;
    cfg.n_workers = workers;
    cfg.threads_per_worker = 1;
    cfg.hnsw.M = 16;
    cfg.hnsw.ef_construction = 100;
    cfg.partitioner.vantage_candidates = 16;
    cfg.partitioner.vantage_sample = 64;
    core::DistributedAnnEngine eng(&w.base, cfg);
    eng.build();
    const auto& bs = eng.build_stats();
    std::printf("%8zu %12.2f %16.2f %16.2f\n", workers, bs.total_seconds,
                bs.vp_tree_seconds, bs.hnsw_seconds);
  }
}

}  // namespace

int main() {
  model_plane();
  functional_plane();
  return 0;
}
