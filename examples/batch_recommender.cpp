/// Batch recommender: the workload the paper's introduction motivates —
/// "queries need not be answered in real time and can be batched together
/// like in recommender systems".
///
/// Items live in a 96-d embedding space (DEEP-like, unit-norm); each user is
/// represented by the centroid of their recently-consumed items. A nightly
/// job answers every user's top-k in one batch through the distributed
/// engine, comparing the replication-balanced configuration against the
/// baseline.
///
/// Run: ./batch_recommender [n_items] [n_users]

#include <cstdio>
#include <cstdlib>

#include "annsim/common/rng.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

int main(int argc, char** argv) {
  using namespace annsim;

  const std::size_t n_items = argc > 1 ? std::size_t(std::atoll(argv[1])) : 30000;
  const std::size_t n_users = argc > 2 ? std::size_t(std::atoll(argv[2])) : 500;
  const std::size_t k = 20;

  // Item catalogue: unit-norm CNN-style embeddings.
  data::Workload catalogue = data::make_deep_like(n_items, 1, 7);
  std::printf("catalogue: %zu items, %zu-d unit-norm embeddings\n", n_items,
              catalogue.base.dim());

  // User profiles: average of a handful of consumed items, renormalized —
  // queries are therefore *correlated with popular regions*, the load
  // pattern that motivates replication (§IV-C2).
  data::Dataset users(n_users, catalogue.base.dim());
  Rng rng(99);
  for (std::size_t u = 0; u < n_users; ++u) {
    float* profile = users.row(u);
    // Popularity bias: most users consume from the same hot slice.
    const std::size_t hot = n_items / 16;
    for (int i = 0; i < 5; ++i) {
      const std::size_t item = rng.uniform() < 0.8
                                   ? rng.uniform_below(hot)
                                   : rng.uniform_below(n_items);
      const float* v = catalogue.base.row(item);
      for (std::size_t d = 0; d < users.dim(); ++d) profile[d] += v[d] / 5.f;
    }
    const float norm = simd::l2_norm(profile, users.dim());
    if (norm > 0.f) {
      for (std::size_t d = 0; d < users.dim(); ++d) profile[d] /= norm;
    }
  }

  auto run = [&](std::size_t replication) {
    core::EngineConfig cfg;
    cfg.n_workers = 8;
    cfg.replication = replication;
    cfg.n_probe = 5;
    cfg.hnsw.M = 16;
    cfg.hnsw.ef_construction = 120;
    core::DistributedAnnEngine engine(&catalogue.base, cfg);
    engine.build();
    core::SearchStats st;
    auto recs = engine.search(users, k, /*ef=*/200, &st);
    return std::pair{std::move(recs), st};
  };

  auto [base_recs, base_st] = run(1);
  auto [repl_recs, repl_st] = run(3);

  auto spread = [](const std::vector<std::uint64_t>& jobs) {
    auto [lo, hi] = std::minmax_element(jobs.begin(), jobs.end());
    return std::pair{*lo, *hi};
  };
  const auto [blo, bhi] = spread(base_st.jobs_per_worker);
  const auto [rlo, rhi] = spread(repl_st.jobs_per_worker);
  std::printf("r=1: %.3fs, jobs/worker min..max = %llu..%llu\n",
              base_st.total_seconds, (unsigned long long)blo,
              (unsigned long long)bhi);
  std::printf("r=3: %.3fs, jobs/worker min..max = %llu..%llu "
              "(replication narrows the spread)\n",
              repl_st.total_seconds, (unsigned long long)rlo,
              (unsigned long long)rhi);

  // Quality check on a sample of users.
  auto gt = data::brute_force_knn(catalogue.base, users, k, simd::Metric::kL2);
  std::printf("recall@%zu = %.3f\n", k, data::mean_recall(repl_recs, gt, k));

  std::printf("user 0 recommendations:");
  for (std::size_t i = 0; i < 5 && i < repl_recs[0].size(); ++i) {
    std::printf(" item-%llu", (unsigned long long)repl_recs[0][i].id);
  }
  std::printf(" ...\n");
  return 0;
}
