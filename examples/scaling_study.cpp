/// Capacity planning with the performance model: "how many cores do I need
/// to answer my batch within a deadline, and is replication worth it?"
///
/// Builds a real VP router over a sample of the target corpus, routes the
/// real query batch, calibrates per-core costs on this machine, and sweeps
/// simulated cluster sizes with the discrete-event simulator — the same
/// tooling the paper-reproduction benches use, exposed as a user-facing
/// what-if study.
///
/// Run: ./scaling_study [batch_size] [target_corpus_size]

#include <cstdio>
#include <cstdlib>

#include "annsim/cluster/calibration.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/des/search_sim.hpp"
#include "annsim/vptree/partition_vp_tree.hpp"

int main(int argc, char** argv) {
  using namespace annsim;

  const std::size_t batch = argc > 1 ? std::size_t(std::atoll(argv[1])) : 20000;
  const std::size_t corpus =
      argc > 2 ? std::size_t(std::atoll(argv[2])) : 100'000'000;

  // A corpus sample large enough for faithful routing geometry.
  const std::size_t sample_n = 32768;
  data::Workload w = data::make_sift_like(sample_n, batch, 55);
  std::printf("planning for %zu queries over a %zu-point corpus "
              "(routing sampled at %zu points)\n",
              batch, corpus, sample_n);

  // Calibrate per-core costs on this machine.
  cluster::CalibrationConfig cal;
  cal.small_n = 4000;
  cal.large_n = 16000;
  const auto costs = cluster::calibrate(w.base, w.queries, cal);
  std::printf("calibrated: %.0f ns/distance, %.0f us/HNSW query @16k\n",
              costs.dist_eval * 1e9, costs.hnsw_query_seconds(16000) * 1e6);

  std::printf("\n%8s %8s %16s %16s %14s\n", "cores", "nodes", "r=1 batch (s)",
              "r=3 batch (s)", "queries/s (r=3)");
  for (std::size_t cores : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    vptree::PartitionVpTreeParams params;
    params.target_partitions = cores;
    params.vantage_candidates = 8;
    params.vantage_sample = 64;
    auto built = vptree::PartitionVpTree::build(w.base, params);

    std::vector<std::vector<PartitionId>> plans(w.queries.size());
    for (std::size_t q = 0; q < w.queries.size(); ++q) {
      plans[q] = built.tree.route_topk(w.queries.row(q), 4).partitions;
    }

    std::vector<double> cost(cores,
                             costs.hnsw_query_seconds_at_scale(corpus / cores));
    des::SearchSimConfig sim;
    sim.n_cores = cores;
    sim.dim = w.base.dim();
    sim.route_seconds = costs.route_seconds(cores);
    auto r1 = des::simulate_search(sim, plans, cost);
    sim.replication = 3;
    auto r3 = des::simulate_search(sim, plans, cost);

    std::printf("%8zu %8zu %16.3f %16.3f %14.0f\n", cores,
                sim.machine.nodes_for_cores(cores), r1.makespan_seconds,
                r3.makespan_seconds, double(batch) / r3.makespan_seconds);
  }
  std::printf("\nPick the smallest configuration whose batch time meets the\n"
              "deadline; replication pays when the query mix is skewed.\n");
  return 0;
}
