/// Quickstart: build a distributed approximate k-NN index over a synthetic
/// corpus and answer a query batch — the five-minute tour of the public API.
///
///   1. make a workload (or load .fvecs/.bvecs files via annsim::data)
///   2. configure the engine (partitions, replication, HNSW parameters)
///   3. build()  — distributed VP-tree partitioning + local HNSW indexes,
///                 executed on the simulated MPI runtime
///   4. search() — master-worker batched k-NN (Algorithms 3-5 of the paper)
///   5. score against exact ground truth
///
/// Run: ./quickstart [n_points] [n_queries]

#include <cstdio>
#include <cstdlib>

#include "annsim/core/engine.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"

int main(int argc, char** argv) {
  using namespace annsim;

  const std::size_t n_points = argc > 1 ? std::size_t(std::atoll(argv[1])) : 20000;
  const std::size_t n_queries = argc > 2 ? std::size_t(std::atoll(argv[2])) : 200;

  // 1. A SIFT-like workload: 128-d descriptor vectors plus held-out queries.
  std::printf("generating %zu base points + %zu queries (128-d, SIFT-like)\n",
              n_points, n_queries);
  data::Workload w = data::make_sift_like(n_points, n_queries);

  // 2. Engine configuration. 8 worker "cores", each holding one partition
  //    of the corpus behind a local HNSW index; every partition is
  //    replicated onto 2 workers for load balancing; each query probes its
  //    4 most promising partitions.
  core::EngineConfig cfg;
  cfg.n_workers = 8;
  cfg.replication = 2;
  cfg.n_probe = 4;
  cfg.one_sided = true;  // workers fold results into the master via RMA
  cfg.hnsw.M = 16;
  cfg.hnsw.ef_construction = 120;

  // 3. Distributed construction.
  core::DistributedAnnEngine engine(&w.base, cfg);
  engine.build();
  const auto& bs = engine.build_stats();
  std::printf("built in %.2fs (VP tree %.2fs, HNSW %.2fs); partitions:",
              bs.total_seconds, bs.vp_tree_seconds, bs.hnsw_seconds);
  for (std::size_t s : bs.partition_sizes) std::printf(" %zu", s);
  std::printf("\n");

  // 4. Batched 10-NN search.
  core::SearchStats st;
  data::KnnResults results = engine.search(w.queries, /*k=*/10, /*ef=*/0, &st);
  std::printf("searched %zu queries in %.3fs (%.0f queries/s, %llu jobs)\n",
              n_queries, st.total_seconds,
              double(n_queries) / st.total_seconds,
              static_cast<unsigned long long>(st.total_jobs));

  // 5. Score against exact brute force.
  auto gt = data::brute_force_knn(w.base, w.queries, 10, simd::Metric::kL2);
  std::printf("recall@10 = %.3f\n", data::mean_recall(results, gt, 10));

  // Peek at one answer.
  std::printf("query 0 nearest neighbors:");
  for (const auto& nb : results[0]) {
    std::printf(" (#%llu d=%.1f)", static_cast<unsigned long long>(nb.id),
                nb.dist);
  }
  std::printf("\n");
  return 0;
}
