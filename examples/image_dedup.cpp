/// Near-duplicate image detection over high-dimensional global descriptors
/// (GIST-like, 960-d) — the regime where KD-trees collapse and the paper's
/// VP+HNSW design is at its strongest (Table III runs ANN_GIST1M).
///
/// We plant near-duplicates (re-encodes of existing images with small
/// perturbations), index the collection, query every planted copy, and
/// check that its original surfaces as the nearest neighbor within a
/// duplicate threshold.
///
/// Run: ./image_dedup [n_images] [n_copies]

#include <cstdio>
#include <cstdlib>

#include "annsim/common/rng.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/data/recipes.hpp"

int main(int argc, char** argv) {
  using namespace annsim;

  const std::size_t n_images = argc > 1 ? std::size_t(std::atoll(argv[1])) : 6000;
  const std::size_t n_copies = argc > 2 ? std::size_t(std::atoll(argv[2])) : 120;

  data::Workload lib = data::make_gist_like(n_images, 1, 31);
  std::printf("library: %zu images, %zu-d GIST-like descriptors\n", n_images,
              lib.base.dim());

  // Plant near-duplicates: copy a random original and jitter ~1%.
  data::Dataset copies(n_copies, lib.base.dim());
  std::vector<GlobalId> original_of(n_copies);
  Rng rng(17);
  float typical_scale = 0.f;
  for (std::size_t d = 0; d < lib.base.dim(); ++d) {
    typical_scale += std::abs(lib.base.row(0)[d]);
  }
  typical_scale /= float(lib.base.dim());
  for (std::size_t c = 0; c < n_copies; ++c) {
    const std::size_t src = rng.uniform_below(n_images);
    original_of[c] = lib.base.id(src);
    float* dst = copies.row(c);
    const float* s = lib.base.row(src);
    for (std::size_t d = 0; d < lib.base.dim(); ++d) {
      dst[d] = s[d] + float(rng.normal(0.0, 0.01 * typical_scale));
    }
  }

  core::EngineConfig cfg;
  cfg.n_workers = 8;
  cfg.n_probe = 4;
  cfg.hnsw.M = 16;
  cfg.hnsw.ef_construction = 120;
  core::DistributedAnnEngine engine(&lib.base, cfg);
  engine.build();
  std::printf("indexed in %.2fs across %zu partitions\n",
              engine.build_stats().total_seconds, cfg.n_workers);

  core::SearchStats st;
  auto hits = engine.search(copies, /*k=*/3, /*ef=*/128, &st);
  std::printf("deduplicated %zu candidates in %.3fs\n", n_copies,
              st.total_seconds);

  // A duplicate should be far closer to its original than to anything else:
  // threshold = half the distance to the 2nd neighbor.
  std::size_t found = 0, confident = 0;
  for (std::size_t c = 0; c < n_copies; ++c) {
    if (hits[c].empty()) continue;
    if (hits[c][0].id == original_of[c]) {
      ++found;
      if (hits[c].size() > 1 && hits[c][0].dist < 0.5f * hits[c][1].dist) {
        ++confident;
      }
    }
  }
  std::printf("originals recovered: %zu/%zu (%.1f%%), confident matches: %zu\n",
              found, n_copies, 100.0 * double(found) / double(n_copies),
              confident);
  return found >= n_copies * 9 / 10 ? 0 : 1;
}
