/// annsim — command-line driver for the distributed ANN engine.
///
/// Works on the standard TEXMEX file formats (.fvecs vectors, .ivecs
/// neighbor lists), so it interoperates with the ANN-benchmarks ecosystem:
///
///   annsim gen SIFT 100000 1000 /tmp/demo          # synthetic corpus
///   annsim gt /tmp/demo_base.fvecs /tmp/demo_query.fvecs 10 /tmp/demo_gt.ivecs
///   annsim build /tmp/demo_base.fvecs /tmp/demo.idx --workers 16 --M 16
///   annsim search /tmp/demo.idx /tmp/demo_query.fvecs 10 /tmp/demo_res.ivecs
///   annsim eval /tmp/demo_res.ivecs /tmp/demo_gt.ivecs 10
///   annsim info /tmp/demo.idx

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "annsim/common/error.hpp"
#include "annsim/common/rng.hpp"
#include "annsim/common/timer.hpp"
#include "annsim/core/engine.hpp"
#include "annsim/recovery/health.hpp"
#include "annsim/data/analysis.hpp"
#include "annsim/data/ground_truth.hpp"
#include "annsim/data/recipes.hpp"
#include "annsim/data/vecs_io.hpp"
#include "annsim/explore/explore.hpp"
#include "annsim/explore/scenario.hpp"
#include "annsim/serve/load_gen.hpp"

namespace {

using namespace annsim;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  annsim gen <SIFT|DEEP|GIST|SYN_1M|SYN_10M> <n_base> "
               "<n_queries> <out_prefix> [seed]\n"
               "  annsim gt <base.fvecs> <query.fvecs> <k> <out.ivecs>\n"
               "  annsim build <base.fvecs> <out.idx> [--workers N] "
               "[--replication R] [--nprobe P] [--M m] [--efc e] [--local "
               "hnsw|bruteforce|vptree|ivfpq|segmented] [--delta-cap C] "
               "[--quantize sq8] [--float-cache F] [--two-sided]\n"
               "  annsim search <index.idx> <query.fvecs> <k> <out.ivecs> "
               "[--ef E]\n"
               "  annsim eval <result.ivecs> <gt.ivecs> <k>\n"
               "  annsim info <index.idx>\n"
               "  annsim serve-bench <index.idx> <query.fvecs> <k> [--qps Q] "
               "[--requests N] [--max-batch B] [--max-delay-ms D] "
               "[--queue-cap C] [--block] [--deadline-ms X] [--closed-loop] "
               "[--clients N] [--ef E] [--write-ratio X] [--compact-at-fill F] "
               "[--overload-ramp] [--deadline-sched] [--brownout-target-ms T] "
               "[--breaker-threshold X] [--quantize] [--mpi-check]\n"
               "  annsim chaos-bench <SIFT|DEEP|GIST|SYN_1M|SYN_10M> <n_base> "
               "<n_queries> <k> [--workers N] [--replication R] [--nprobe P] "
               "[--kill-worker W] [--kill-after N] [--drop-p D] "
               "[--timeout-ms T] [--fault-seed S] [--two-sided] "
               "[--heal-after-ms H] [--checkpoint-dir D] [--wal-dir D] "
               "[--json PATH] [--mpi-check]\n"
               "  annsim mutate-bench <SIFT|DEEP|GIST|SYN_1M|SYN_10M> <n_base> "
               "<n_queries> <k> [--workers N] [--replication R] [--nprobe P] "
               "[--write-ratio X] [--qps Q] [--requests N] [--delta-cap C] "
               "[--compact-at-fill F] [--kill-worker W] [--kill-after N] "
               "[--timeout-ms T] [--checkpoint-dir D] [--wal-dir D] "
               "[--no-group-commit] [--checkpoint-every N] [--crash-at-lsn L] "
               "[--disk-fault crash|short|torn|flip] [--recall-tol T] "
               "[--json PATH] [--mpi-check]\n"
               "  annsim overload-bench <SIFT|DEEP|GIST|SYN_1M|SYN_10M> "
               "<n_base> <n_queries> <k> [--workers N] [--nprobe P] "
               "[--deadline-ms D] [--requests N] [--max-batch B] "
               "[--max-delay-ms D] [--queue-cap C] [--brownout-target-ms T] "
               "[--brownout-floor F] [--breaker-threshold X] [--json PATH] "
               "[--mpi-check]\n"
               "  annsim explore-bench [--mix write|query|compact|heal|mixed|"
               "all] [--strategy random|pct|dfs] [--seeds N] [--seed S] "
               "[--pct-depth D] [--max-schedules N] [--workers N] "
               "[--replication R] [--rows N] [--write-rows N] [--no-faults] "
               "[--replay TOKEN] [--scratch DIR] [--mpi-check]\n");
  std::exit(2);
}

std::size_t arg_num(const char* s) { return std::size_t(std::atoll(s)); }

/// Find "--name value" in argv; returns fallback when absent.
std::string opt(int argc, char** argv, const char* name,
                const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Print an engine's annsim::check report (when armed) and fold any
/// violation into the exit code so CI can gate on `--mpi-check` runs.
int check_exit(bool armed, const core::DistributedAnnEngine& engine,
               const char* label, int rc) {
  if (!armed) return rc;
  const auto rep = engine.check_report();
  std::printf("mpi-check [%s]: %s\n", label, check::to_string(rep).c_str());
  return rep.clean() ? rc : 1;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string recipe = argv[0];
  const std::size_t n_base = arg_num(argv[1]);
  const std::size_t n_queries = arg_num(argv[2]);
  const std::string prefix = argv[3];
  const std::uint64_t seed = argc > 4 ? arg_num(argv[4]) : 42;

  auto w = data::make_by_name(recipe, n_base, n_queries, seed);
  data::save_fvecs(prefix + "_base.fvecs", w.base);
  data::save_fvecs(prefix + "_query.fvecs", w.queries);
  std::printf("wrote %s_base.fvecs (%zu x %zu) and %s_query.fvecs (%zu x %zu)\n",
              prefix.c_str(), w.base.size(), w.base.dim(), prefix.c_str(),
              w.queries.size(), w.queries.dim());
  return 0;
}

int cmd_gt(int argc, char** argv) {
  if (argc < 4) usage();
  auto base = data::load_fvecs(argv[0]);
  auto queries = data::load_fvecs(argv[1]);
  const std::size_t k = arg_num(argv[2]);

  ThreadPool pool;
  WallTimer t;
  auto gt = data::brute_force_knn(base, queries, k, simd::Metric::kL2, &pool);
  std::printf("exact %zu-NN of %zu queries over %zu points in %.2fs\n", k,
              queries.size(), base.size(), t.seconds());

  const double d_int = data::intrinsic_dimension(gt, base.dim());
  const auto prof = data::neighbor_profile(gt);
  std::printf("geometry: intrinsic dim ~%.1f, mean r1 %.3g, mean rk %.3g, "
              "contrast %.3f\n",
              d_int, prof.mean_r1, prof.mean_rk, prof.contrast);

  std::vector<std::vector<std::int32_t>> rows(gt.size());
  for (std::size_t q = 0; q < gt.size(); ++q) {
    for (const auto& nb : gt[q]) rows[q].push_back(std::int32_t(nb.id));
  }
  data::save_ivecs(argv[3], rows);
  std::printf("wrote %s\n", argv[3]);
  return 0;
}

core::LocalIndexKind parse_local(const std::string& s) {
  if (s == "hnsw") return core::LocalIndexKind::kHnsw;
  if (s == "bruteforce") return core::LocalIndexKind::kBruteForce;
  if (s == "vptree") return core::LocalIndexKind::kVpTree;
  if (s == "ivfpq") return core::LocalIndexKind::kIvfPq;
  if (s == "segmented") return core::LocalIndexKind::kSegmented;
  std::fprintf(stderr, "unknown local index kind: %s\n", s.c_str());
  std::exit(2);
}

int cmd_build(int argc, char** argv) {
  if (argc < 2) usage();
  auto base = data::load_fvecs(argv[0]);
  core::EngineConfig cfg;
  cfg.n_workers = arg_num(opt(argc, argv, "--workers", "8").c_str());
  cfg.replication = arg_num(opt(argc, argv, "--replication", "1").c_str());
  cfg.n_probe = arg_num(opt(argc, argv, "--nprobe", "4").c_str());
  cfg.hnsw.M = arg_num(opt(argc, argv, "--M", "16").c_str());
  cfg.hnsw.ef_construction = arg_num(opt(argc, argv, "--efc", "200").c_str());
  cfg.local_index = parse_local(opt(argc, argv, "--local", "hnsw"));
  cfg.segment_delta_capacity =
      arg_num(opt(argc, argv, "--delta-cap", "1024").c_str());
  const std::string quantize = opt(argc, argv, "--quantize", "");
  if (!quantize.empty()) {
    ANNSIM_CHECK_MSG(quantize == "sq8",
                     "--quantize supports 'sq8' only, got '" << quantize << "'");
    // Quantization lives in the segmented tier's freeze path; pick it
    // automatically unless the user asked for an incompatible kind.
    if (flag(argc, argv, "--local")) {
      ANNSIM_CHECK_MSG(cfg.local_index == core::LocalIndexKind::kSegmented,
                       "--quantize sq8 requires --local segmented");
    }
    cfg.local_index = core::LocalIndexKind::kSegmented;
    cfg.quantize_frozen = true;
    cfg.float_cache_fraction =
        std::atof(opt(argc, argv, "--float-cache", "0.02").c_str());
  }
  if (flag(argc, argv, "--two-sided")) cfg.one_sided = false;

  std::printf("building: %zu points x %zu-d, %zu workers, r=%zu, local=%s%s\n",
              base.size(), base.dim(), cfg.n_workers, cfg.replication,
              core::local_index_kind_name(cfg.local_index),
              cfg.quantize_frozen ? "+sq8" : "");
  core::DistributedAnnEngine engine(&base, cfg);
  engine.build();
  const auto& bs = engine.build_stats();
  std::printf("built in %.2fs (VP %.2fs, local indexes %.2fs, replication "
              "%.2fs)\n",
              bs.total_seconds, bs.vp_tree_seconds, bs.hnsw_seconds,
              bs.replication_seconds);
  if (cfg.quantize_frozen) {
    const auto cs = engine.compression_stats();
    std::printf("sq8: %zu rows quantized, %.1f MiB resident vs %.1f MiB "
                "full-float (%.2fx), %zu rows float-cached\n",
                cs.quant_rows, double(cs.quant_resident_bytes) / (1024.0 * 1024.0),
                double(cs.quant_float_bytes) / (1024.0 * 1024.0),
                cs.compression_ratio(), cs.quant_cached_rows);
  }
  engine.save(argv[1]);
  std::printf("wrote %s\n", argv[1]);
  return 0;
}

int cmd_search(int argc, char** argv) {
  if (argc < 4) usage();
  auto engine = core::DistributedAnnEngine::load(argv[0]);
  auto queries = data::load_fvecs(argv[1]);
  const std::size_t k = arg_num(argv[2]);
  const std::size_t ef = arg_num(opt(argc, argv, "--ef", "0").c_str());

  core::SearchStats st;
  auto results = engine.search(queries, k, ef, &st);
  std::printf("%zu queries, k=%zu: %.3fs total (%.0f q/s), %llu jobs, "
              "load CV %.3f\n",
              queries.size(), k, st.total_seconds,
              double(queries.size()) / st.total_seconds,
              static_cast<unsigned long long>(st.total_jobs),
              data::load_imbalance_cv(st.jobs_per_worker));

  std::vector<std::vector<std::int32_t>> rows(results.size());
  for (std::size_t q = 0; q < results.size(); ++q) {
    for (const auto& nb : results[q]) rows[q].push_back(std::int32_t(nb.id));
  }
  data::save_ivecs(argv[3], rows);
  std::printf("wrote %s\n", argv[3]);
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 3) usage();
  auto result = data::load_ivecs(argv[0]);
  auto truth = data::load_ivecs(argv[1]);
  const std::size_t k = arg_num(argv[2]);
  if (result.size() != truth.size()) {
    std::fprintf(stderr, "row count mismatch: %zu results vs %zu truth\n",
                 result.size(), truth.size());
    return 1;
  }
  double recall = 0.0;
  for (std::size_t q = 0; q < result.size(); ++q) {
    const std::size_t kk = std::min(k, truth[q].size());
    if (kk == 0) continue;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < std::min(k, result[q].size()); ++i) {
      for (std::size_t j = 0; j < kk; ++j) {
        if (result[q][i] == truth[q][j]) {
          ++hits;
          break;
        }
      }
    }
    recall += double(hits) / double(kk);
  }
  std::printf("recall@%zu = %.4f over %zu queries\n", k,
              recall / double(result.size()), result.size());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) usage();
  auto engine = core::DistributedAnnEngine::load(argv[0]);
  const auto& cfg = engine.config();
  const auto sizes = engine.partition_sizes();
  std::size_t total = 0;
  for (auto s : sizes) total += s;
  std::printf("index: %zu points x %zu-d in %zu partitions\n", total,
              engine.router().dim(), sizes.size());
  std::printf("config: r=%zu n_probe=%zu local=%s M=%zu efc=%zu %s\n",
              cfg.replication, cfg.n_probe,
              core::local_index_kind_name(cfg.local_index), cfg.hnsw.M,
              cfg.hnsw.ef_construction,
              cfg.one_sided ? "one-sided" : "two-sided");
  std::printf("router depth %zu, build time %.2fs\n", engine.router().depth(),
              engine.build_stats().total_seconds);
  return 0;
}

/// Online serving benchmark: drive a loaded index with a Poisson (open-loop)
/// or N-client (closed-loop) request stream through the QueryServer's
/// micro-batching tier and print the latency/throughput telemetry.
///
/// With --write-ratio X (requires a segmented index) a writer thread streams
/// live inserts/deletes alongside the reads at X/(1-X) of the read rate, and
/// --compact-at-fill arms the server's background compaction, so the printed
/// latency percentiles reflect serving *while* the index mutates and
/// re-freezes underneath it.
int cmd_serve_bench(int argc, char** argv) {
  if (argc < 3) usage();
  auto engine = core::DistributedAnnEngine::load(argv[0]);
  auto queries = data::load_fvecs(argv[1]);

  const bool mpi_check = flag(argc, argv, "--mpi-check");
  if (mpi_check) engine.set_mpi_check(true, /*fatal=*/false);

  const bool want_quant = flag(argc, argv, "--quantize");
  if (want_quant) {
    ANNSIM_CHECK_MSG(engine.config().quantize_frozen,
                     "--quantize: index was not built with SQ8 quantization "
                     "(rebuild with `annsim build ... --quantize sq8`)");
  }

  const double write_ratio =
      std::atof(opt(argc, argv, "--write-ratio", "0").c_str());
  ANNSIM_CHECK_MSG(write_ratio >= 0.0 && write_ratio < 1.0,
                   "--write-ratio must be in [0, 1)");
  ANNSIM_CHECK_MSG(
      write_ratio == 0.0 ||
          engine.config().local_index == core::LocalIndexKind::kSegmented,
      "--write-ratio needs an index built with --local segmented");

  serve::ServerConfig sc;
  sc.max_batch = arg_num(opt(argc, argv, "--max-batch", "32").c_str());
  sc.max_delay_ms = std::atof(opt(argc, argv, "--max-delay-ms", "2").c_str());
  sc.queue_capacity = arg_num(opt(argc, argv, "--queue-cap", "1024").c_str());
  sc.ef = arg_num(opt(argc, argv, "--ef", "0").c_str());
  sc.compact_at_fill =
      arg_num(opt(argc, argv, "--compact-at-fill", "0").c_str());
  if (flag(argc, argv, "--block")) sc.overflow = serve::OverflowPolicy::kBlock;
  sc.deadline_scheduling = flag(argc, argv, "--deadline-sched");
  sc.brownout_target_ms =
      std::atof(opt(argc, argv, "--brownout-target-ms", "0").c_str());
  sc.brownout_floor =
      std::atof(opt(argc, argv, "--brownout-floor", "0.25").c_str());
  sc.breaker_threshold =
      std::atof(opt(argc, argv, "--breaker-threshold", "0").c_str());

  serve::LoadGenConfig lg;
  lg.open_loop = !flag(argc, argv, "--closed-loop");
  lg.qps = std::atof(opt(argc, argv, "--qps", "1000").c_str());
  lg.n_requests = arg_num(opt(argc, argv, "--requests", "2000").c_str());
  lg.n_clients = arg_num(opt(argc, argv, "--clients", "4").c_str());
  lg.k = arg_num(argv[2]);
  lg.deadline_ms = std::atof(opt(argc, argv, "--deadline-ms", "0").c_str());

  if (lg.open_loop) {
    std::printf("serve-bench: open-loop Poisson, %.0f q/s offered, %zu "
                "requests, k=%zu\n",
                lg.qps, lg.n_requests, lg.k);
  } else {
    std::printf("serve-bench: closed-loop, %zu clients, %zu requests, k=%zu\n",
                lg.n_clients, lg.n_requests, lg.k);
  }
  std::printf("policy: max_batch=%zu max_delay=%.2fms queue=%zu on-full=%s "
              "deadline=%.2fms\n",
              sc.max_batch, sc.max_delay_ms, sc.queue_capacity,
              sc.overflow == serve::OverflowPolicy::kBlock ? "block" : "reject",
              lg.deadline_ms);

  serve::QueryServer server(&engine, sc);

  // Mixed read/write mode: stream perturbed copies of the query vectors in
  // as new points (and periodically delete a slice of them back out) while
  // run_load drives the read side.
  std::atomic<bool> reads_done{false};
  std::uint64_t w_inserted = 0, w_erased = 0, w_dropped = 0, w_peak_fill = 0;
  std::thread writer;
  if (write_ratio > 0.0) {
    writer = std::thread([&] {
      Rng rng(99);
      const std::size_t dim = queries.dim();
      const double wps = lg.qps * write_ratio / (1.0 - write_ratio);
      constexpr std::size_t kBatchRows = 8;
      const double period_s = double(kBatchRows) / std::max(1.0, wps);
      std::vector<GlobalId> last_ids;
      WallTimer t;
      for (std::size_t round = 0; !reads_done.load(std::memory_order_acquire);
           ++round) {
        data::Dataset batch(kBatchRows, dim);
        for (std::size_t i = 0; i < kBatchRows; ++i) {
          const auto src = queries.row_span(rng.uniform_below(queries.size()));
          std::vector<float> v(src.begin(), src.end());
          for (float& x : v) x += float(rng.normal(0.0, 0.05));
          batch.set_row(i, v);
        }
        const auto ws = engine.insert(batch);
        w_inserted += ws.inserted_replicas;
        w_dropped += ws.dropped_rows;
        w_peak_fill = std::max(w_peak_fill, ws.max_delta_fill);
        if (round % 4 == 3 && !last_ids.empty()) {
          const auto dws = engine.remove(last_ids);
          w_erased += dws.erased_replicas;
        }
        last_ids = ws.assigned_ids;
        const double next_at = double(round + 1) * period_s;
        while (t.seconds() < next_at &&
               !reads_done.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }

  serve::LoadGenReport rep;
  if (flag(argc, argv, "--overload-ramp")) {
    // Sweep offered load from half the nominal rate to 2x, back to back
    // against the same server, with a mixed-class stream so the overload
    // controls have classes to discriminate between.
    ANNSIM_CHECK_MSG(lg.open_loop, "--overload-ramp requires open-loop load");
    lg.class_mix = {0.5, 0.3, 0.2};
    static constexpr double kMults[] = {0.5, 1.0, 1.5, 2.0};
    auto stages = serve::run_ramp(server, queries, lg, kMults);
    for (const auto& stage : stages) {
      const auto& r = stage.report;
      const auto& ia = r.by_class[std::size_t(serve::PriorityClass::kInteractive)];
      std::printf("ramp %.1fx (%.0f q/s offered): goodput %.0f q/s, "
                  "interactive hit %.3f p999 %.2fms, %zu shed, %zu expired, "
                  "min effort %.2f\n",
                  stage.multiplier, r.offered_qps,
                  r.wall_seconds > 0 ? double(r.ok) / r.wall_seconds : 0.0,
                  ia.hit_rate, ia.p999_ms, r.shed, r.expired,
                  r.min_effort_factor);
    }
    rep = std::move(stages.back().report);
  } else {
    rep = serve::run_load(server, queries, lg);
  }
  reads_done.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  server.stop();

  std::printf("%s\n", serve::to_string(rep.metrics).c_str());
  std::printf("client-side: %zu ok, %zu rejected, %zu expired, %zu shed, "
              "%zu failed in %.3fs (offered %.0f q/s)\n",
              rep.ok, rep.rejected, rep.expired, rep.shed, rep.failed,
              rep.wall_seconds, rep.offered_qps);
  if (write_ratio > 0.0) {
    std::printf("write plane: %llu replica inserts, %llu replica erases, "
                "%llu dropped rows, peak delta fill %llu, final fill %zu\n",
                static_cast<unsigned long long>(w_inserted),
                static_cast<unsigned long long>(w_erased),
                static_cast<unsigned long long>(w_dropped),
                static_cast<unsigned long long>(w_peak_fill),
                engine.max_delta_fill());
  }
  if (want_quant) {
    const auto cs = engine.compression_stats();
    std::printf("sq8 plane: %zu rows, %.1f MiB resident vs %.1f MiB "
                "full-float (%.2fx), re-rank %llu exact / %llu coded\n",
                cs.quant_rows,
                double(cs.quant_resident_bytes) / (1024.0 * 1024.0),
                double(cs.quant_float_bytes) / (1024.0 * 1024.0),
                cs.compression_ratio(),
                static_cast<unsigned long long>(cs.rerank_exact),
                static_cast<unsigned long long>(cs.rerank_coded));
  }
  return check_exit(mpi_check, engine, "serve", 0);
}

/// Chaos run on a synthetic workload: the same engine searched fault-free,
/// then again with a worker killed mid-batch, so the recall/latency cost of
/// failover (or of degradation, at replication 1) is read off directly.
///
/// With --heal-after-ms the run continues past the failure: the engine heals
/// (rejoins the dead worker and re-replicates its partitions, from the
/// --checkpoint-dir store when given, else by streaming from survivors) and
/// the same batch runs once more. Exits non-zero if any post-heal query is
/// still degraded or any partition stays under-replicated, so CI can gate
/// on recovery actually restoring full coverage.
int cmd_chaos_bench(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string recipe = argv[0];
  const std::size_t n_base = arg_num(argv[1]);
  const std::size_t n_queries = arg_num(argv[2]);
  const std::size_t k = arg_num(argv[3]);

  core::EngineConfig cfg;
  cfg.n_workers = arg_num(opt(argc, argv, "--workers", "8").c_str());
  cfg.replication = arg_num(opt(argc, argv, "--replication", "2").c_str());
  cfg.n_probe = arg_num(opt(argc, argv, "--nprobe", "4").c_str());
  if (flag(argc, argv, "--two-sided")) cfg.one_sided = false;
  const bool mpi_check = flag(argc, argv, "--mpi-check");
  if (mpi_check) {
    cfg.mpi_check = true;
    cfg.check_fatal = false;  // report once at exit, not mid-run
  }

  const std::size_t kill_worker =
      arg_num(opt(argc, argv, "--kill-worker", "1").c_str());
  const std::uint64_t kill_after =
      arg_num(opt(argc, argv, "--kill-after", "2").c_str());
  const double drop_p = std::atof(opt(argc, argv, "--drop-p", "0").c_str());
  const double timeout_ms =
      std::atof(opt(argc, argv, "--timeout-ms", "100").c_str());
  const std::uint64_t fault_seed =
      arg_num(opt(argc, argv, "--fault-seed", "1").c_str());
  const double heal_after_ms =
      std::atof(opt(argc, argv, "--heal-after-ms", "-1").c_str());
  const std::string checkpoint_dir = opt(argc, argv, "--checkpoint-dir", "");
  const std::string wal_dir = opt(argc, argv, "--wal-dir", "");
  const std::string json_path = opt(argc, argv, "--json", "");
  // The WAL hangs off the segmented local index; arming it switches the
  // whole bench (baseline included, for a like-for-like recall comparison).
  if (!wal_dir.empty()) cfg.local_index = core::LocalIndexKind::kSegmented;

  auto w = data::make_by_name(recipe, n_base, n_queries, 42);
  std::printf("chaos-bench: %zu x %zu-d, %zu queries, k=%zu, %zu workers, "
              "r=%zu, %s\n",
              w.base.size(), w.base.dim(), w.queries.size(), k, cfg.n_workers,
              cfg.replication, cfg.one_sided ? "one-sided" : "two-sided");
  auto gt = data::brute_force_knn(w.base, w.queries, k, simd::Metric::kL2);

  core::DistributedAnnEngine clean(&w.base, cfg);
  clean.build();
  core::SearchStats base_st;
  auto base_res = clean.search(w.queries, k, 0, &base_st);
  const double base_recall = data::mean_recall(base_res, gt, k);
  std::printf("fault-free: recall@%zu %.4f in %.3fs\n", k, base_recall,
              base_st.total_seconds);

  auto chaos_cfg = cfg;
  chaos_cfg.result_timeout_ms = timeout_ms;
  chaos_cfg.fault.seed = fault_seed;
  chaos_cfg.fault.drop_probability = drop_p;
  chaos_cfg.checkpoint_dir = checkpoint_dir;
  chaos_cfg.wal_dir = wal_dir;
  chaos_cfg.fault.kills.push_back(
      {int(kill_worker) + 1, kill_after, mpi::kNeverFires});
  std::printf("injecting: kill worker %zu after %llu ops, drop_p=%.2f, "
              "detect timeout %.1fms, fault seed %llu\n",
              kill_worker, static_cast<unsigned long long>(kill_after), drop_p,
              timeout_ms, static_cast<unsigned long long>(fault_seed));

  core::DistributedAnnEngine chaotic(&w.base, chaos_cfg);
  chaotic.build();
  core::SearchStats st;
  auto res = chaotic.search(w.queries, k, 0, &st);
  const double recall = data::mean_recall(res, gt, k);

  double degraded_recall = 0.0;
  if (st.degraded_queries > 0) {
    data::KnnResults deg;
    data::KnnResults deg_gt;
    for (std::size_t q = 0; q < res.size(); ++q) {
      if (q < st.coverage.size() && st.coverage[q].degraded()) {
        deg.push_back(res[q]);
        deg_gt.push_back(gt[q]);
      }
    }
    degraded_recall = data::mean_recall(deg, deg_gt, k);
  }

  std::printf("under failure: recall@%zu %.4f in %.3fs (%+.1f%% time)\n", k,
              recall, st.total_seconds,
              (st.total_seconds - base_st.total_seconds) /
                  base_st.total_seconds * 100.0);
  std::printf("fault tolerance: %llu workers failed, %llu retries, %llu "
              "failovers, %llu/%zu queries degraded",
              static_cast<unsigned long long>(st.workers_failed),
              static_cast<unsigned long long>(st.retries),
              static_cast<unsigned long long>(st.failovers),
              static_cast<unsigned long long>(st.degraded_queries),
              res.size());
  if (st.degraded_queries > 0) {
    std::printf(" (degraded-only recall %.4f)", degraded_recall);
  }
  std::printf("\n");
  if (heal_after_ms < 0) {
    return check_exit(mpi_check, chaotic, "chaos", 0);
  }

  // --- recovery: wait, heal, and prove the cluster answers at full
  // coverage again. ---
  if (heal_after_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(heal_after_ms));
  }
  WallTimer heal_timer;
  const auto heal = chaotic.heal();
  const double time_to_heal_ms = heal_timer.seconds() * 1e3;
  std::printf("%s\n", recovery::to_string(heal).c_str());

  core::SearchStats post_st;
  auto post_res = chaotic.search(w.queries, k, 0, &post_st);
  const double post_recall = data::mean_recall(post_res, gt, k);
  const auto under = chaotic.under_replicated_partitions();
  std::printf("post-heal: recall@%zu %.4f in %.3fs, %llu/%zu queries "
              "degraded, %zu partitions under-replicated\n",
              k, post_recall, post_st.total_seconds,
              static_cast<unsigned long long>(post_st.degraded_queries),
              post_res.size(), under.size());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    ANNSIM_CHECK_MSG(f != nullptr, "cannot open " << json_path);
    std::fprintf(
        f,
        "{\n"
        "  \"workload\": \"%s\",\n"
        "  \"n_base\": %zu,\n"
        "  \"n_queries\": %zu,\n"
        "  \"k\": %zu,\n"
        "  \"workers\": %zu,\n"
        "  \"replication\": %zu,\n"
        "  \"restore_path\": \"%s\",\n"
        "  \"time_to_heal_ms\": %.3f,\n"
        "  \"workers_revived\": %zu,\n"
        "  \"replicas_restored_from_checkpoint\": %zu,\n"
        "  \"replicas_restored_from_peer\": %zu,\n"
        "  \"replicas_unrecoverable\": %zu,\n"
        "  \"wal_replayed_records\": %zu,\n"
        "  \"wal_truncated_tail_bytes\": %zu,\n"
        "  \"degraded_before_heal\": %llu,\n"
        "  \"degraded_after_heal\": %llu,\n"
        "  \"under_replicated_after_heal\": %zu,\n"
        "  \"recall_fault_free\": %.4f,\n"
        "  \"recall_under_failure\": %.4f,\n"
        "  \"recall_after_heal\": %.4f\n"
        "}\n",
        recipe.c_str(), w.base.size(), w.queries.size(), k, cfg.n_workers,
        cfg.replication, checkpoint_dir.empty() ? "peer-stream" : "checkpoint",
        time_to_heal_ms, heal.workers_revived,
        heal.replicas_restored_from_checkpoint, heal.replicas_restored_from_peer,
        heal.replicas_unrecoverable, heal.wal_replayed_records,
        heal.wal_truncated_tail_bytes,
        static_cast<unsigned long long>(st.degraded_queries),
        static_cast<unsigned long long>(post_st.degraded_queries),
        under.size(), base_recall, recall, post_recall);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (post_st.degraded_queries > 0 || !under.empty()) {
    std::fprintf(stderr,
                 "chaos-bench: recovery incomplete (%llu degraded queries, "
                 "%zu under-replicated partitions after heal)\n",
                 static_cast<unsigned long long>(post_st.degraded_queries),
                 under.size());
    return check_exit(mpi_check, chaotic, "chaos", 1);
  }
  return check_exit(mpi_check, chaotic, "chaos", 0);
}

/// Live-mutability benchmark on a synthetic workload. The tail of the corpus
/// is held back from the offline build and streamed in through the engine's
/// write plane while an open-loop read stream runs through the QueryServer —
/// with background compaction armed and (by default) one worker killed and
/// auto-healed mid-run. Two gates make it CI-able:
///
///  * read latency stays steady: the run is cut into time windows and the
///    worst window p999 must stay within 2x the median window (plus a small
///    additive floor), so a compaction or kill+heal stall shows up as a
///    failure, and
///  * the mutated index converges: after a final compaction, recall@k of the
///    live engine over the *final* corpus (base - deletes + stream) must be
///    within --recall-tol of a fresh offline build of that same corpus, and
///    no deleted id may ever resurface in a result list.
int cmd_mutate_bench(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string recipe = argv[0];
  const std::size_t n_base = arg_num(argv[1]);
  const std::size_t n_queries = arg_num(argv[2]);
  const std::size_t k = arg_num(argv[3]);

  core::EngineConfig cfg;
  cfg.local_index = core::LocalIndexKind::kSegmented;
  cfg.n_workers = arg_num(opt(argc, argv, "--workers", "8").c_str());
  cfg.replication = arg_num(opt(argc, argv, "--replication", "2").c_str());
  cfg.n_probe = arg_num(opt(argc, argv, "--nprobe", "4").c_str());
  cfg.segment_delta_capacity =
      arg_num(opt(argc, argv, "--delta-cap", "256").c_str());
  cfg.result_timeout_ms =
      std::atof(opt(argc, argv, "--timeout-ms", "100").c_str());
  cfg.checkpoint_dir = opt(argc, argv, "--checkpoint-dir", "");
  cfg.wal_dir = opt(argc, argv, "--wal-dir", "");
  cfg.wal_group_commit = !flag(argc, argv, "--no-group-commit");
  cfg.checkpoint_every_rounds =
      arg_num(opt(argc, argv, "--checkpoint-every", "1").c_str());
  const bool mpi_check = flag(argc, argv, "--mpi-check");
  if (mpi_check) {
    cfg.mpi_check = true;
    cfg.check_fatal = false;
  }

  const double write_ratio =
      std::atof(opt(argc, argv, "--write-ratio", "0.1").c_str());
  ANNSIM_CHECK_MSG(write_ratio > 0.0 && write_ratio < 1.0,
                   "--write-ratio must be in (0, 1)");
  const double qps = std::atof(opt(argc, argv, "--qps", "500").c_str());
  const std::size_t n_requests =
      arg_num(opt(argc, argv, "--requests", "4000").c_str());
  const std::size_t compact_at =
      arg_num(opt(argc, argv, "--compact-at-fill", "32").c_str());
  const std::size_t kill_worker =
      arg_num(opt(argc, argv, "--kill-worker", "1").c_str());
  const std::uint64_t kill_after =
      arg_num(opt(argc, argv, "--kill-after", "200").c_str());  // 0 = no kill
  const double recall_tol =
      std::atof(opt(argc, argv, "--recall-tol", "0.03").c_str());
  const std::string json_path = opt(argc, argv, "--json", "");
  if (kill_after > 0) {
    cfg.fault.seed = 1;
    cfg.fault.kills.push_back(
        {int(kill_worker) + 1, kill_after, mpi::kNeverFires});
  }
  // Disk-fault plane: corrupt --kill-worker's WAL at a chosen LSN instead of
  // (or on top of) the message-plane kill. All disk faults are terminal, so
  // the same detect -> heal -> replay path runs, now against a damaged log.
  const std::uint64_t crash_at_lsn =
      arg_num(opt(argc, argv, "--crash-at-lsn", "0").c_str());  // 0 = off
  const std::string disk_fault_name = opt(argc, argv, "--disk-fault", "crash");
  if (crash_at_lsn > 0) {
    ANNSIM_CHECK_MSG(!cfg.wal_dir.empty(),
                     "--crash-at-lsn needs --wal-dir: disk faults target the "
                     "write-ahead log");
    mpi::DiskFaultKind kind = mpi::DiskFaultKind::kCrashAtLsn;
    if (disk_fault_name == "crash") {
      kind = mpi::DiskFaultKind::kCrashAtLsn;
    } else if (disk_fault_name == "short") {
      kind = mpi::DiskFaultKind::kShortWrite;
    } else if (disk_fault_name == "torn") {
      kind = mpi::DiskFaultKind::kTornWrite;
    } else if (disk_fault_name == "flip") {
      kind = mpi::DiskFaultKind::kFlipByte;
    } else {
      usage();
    }
    cfg.fault.seed = 1;
    cfg.fault.disk_faults.push_back({int(kill_worker) + 1, crash_at_lsn, kind});
  }
  const bool any_kill = kill_after > 0 || crash_at_lsn > 0;

  // Workload: hold the corpus tail out of the offline build and stream it in
  // live. Because the engine hands out ids sequentially from max(base id)+1,
  // the streamed rows keep their original global ids and one ground truth
  // covers offline and live alike.
  std::size_t n_stream = std::size_t(
      double(n_requests) * write_ratio / (1.0 - write_ratio));
  n_stream = std::min(n_stream, n_base / 2);
  ANNSIM_CHECK_MSG(n_stream > 0, "write stream is empty; raise --requests");
  const std::size_t n_build = n_base - n_stream;

  auto w = data::make_by_name(recipe, n_base, n_queries, 42);
  auto build_base = w.base.slice(0, n_build);
  auto stream = w.base.slice(n_build, n_base);

  // Deletes target rows frozen into the offline build, so tombstones must
  // punch through immutable segments, survive compaction, failover, and
  // checkpoint replay.
  Rng rng(7);
  const std::size_t n_delete = std::max<std::size_t>(1, n_stream / 5);
  std::vector<char> deleted(n_build, 0);
  std::vector<GlobalId> del_ids;
  while (del_ids.size() < n_delete) {
    const std::uint64_t id = rng.uniform_below(n_build);
    if (deleted[id]) continue;
    deleted[id] = 1;
    del_ids.push_back(GlobalId(id));
  }
  std::sort(del_ids.begin(), del_ids.end());

  data::Dataset final_corpus;
  {
    std::vector<std::size_t> keep;
    keep.reserve(n_build - n_delete);
    for (std::size_t i = 0; i < n_build; ++i) {
      if (!deleted[i]) keep.push_back(i);
    }
    final_corpus = w.base.subset(keep);
    final_corpus.append(stream);
  }

  std::printf("mutate-bench: %zu x %zu-d offline + %zu streamed - %zu "
              "deleted, %zu queries, k=%zu, %zu workers, r=%zu\n",
              n_build, w.base.dim(), n_stream, n_delete, n_queries, k,
              cfg.n_workers, cfg.replication);
  auto gt = data::brute_force_knn(final_corpus, w.queries, k, simd::Metric::kL2);

  core::DistributedAnnEngine engine(&build_base, cfg);
  engine.build();

  serve::ServerConfig sc;
  sc.max_batch = 32;
  sc.max_delay_ms = 2.0;
  sc.queue_capacity = 4096;
  sc.auto_heal = any_kill;
  sc.compact_at_fill = compact_at;
  serve::QueryServer server(&engine, sc);

  // Writer: stream the held-out rows in rounds across the first ~60% of the
  // read window (one delete burst at the midpoint), so compactions and the
  // kill+heal all land while reads are still flowing.
  std::uint64_t w_inserted = 0, w_erased = 0, w_dropped = 0, w_peak_fill = 0;
  std::uint64_t id_mismatches = 0;
  // Durability ledger: ids the engine *acked* (ack => WAL-durable when a
  // wal_dir is armed). Only acked writes are owed back after kill+replay.
  std::vector<GlobalId> acked_ids;
  bool deletes_acked = false;
  const double read_window_s = double(n_requests) / std::max(1.0, qps);
  std::thread writer([&] {
    constexpr std::size_t kRounds = 16;
    const std::size_t per_round = (n_stream + kRounds - 1) / kRounds;
    const double write_window_s = read_window_s * 0.6;
    GlobalId expect = GlobalId(n_build);
    WallTimer t;
    std::size_t off = 0;
    for (std::size_t rd = 0; rd < kRounds && off < n_stream; ++rd) {
      const double at = write_window_s * double(rd) / double(kRounds);
      while (t.seconds() < at) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const std::size_t end = std::min(off + per_round, n_stream);
      auto batch = stream.slice(off, end);
      const auto ws = engine.insert(batch);
      w_inserted += ws.inserted_replicas;
      w_dropped += ws.dropped_rows;
      w_peak_fill = std::max(w_peak_fill, ws.max_delta_fill);
      for (const GlobalId id : ws.assigned_ids) {
        if (id != expect++) ++id_mismatches;
      }
      for (std::size_t i = 0; i < ws.assigned_ids.size(); ++i) {
        if (i < ws.row_acked.size() && ws.row_acked[i]) {
          acked_ids.push_back(ws.assigned_ids[i]);
        }
      }
      if (rd == kRounds / 2) {
        const auto dws = engine.remove(del_ids);
        w_erased += dws.erased_replicas;
        deletes_acked = dws.all_acked;
      }
      off = end;
    }
    if (w_erased == 0) {  // stream drained before the midpoint round
      const auto dws = engine.remove(del_ids);
      w_erased += dws.erased_replicas;
      deletes_acked = dws.all_acked;
    }
  });

  // Open-loop read stream, uniformly paced; per-request latencies are kept
  // with their submit times so p999 can be windowed over the run.
  std::vector<std::future<serve::QueryResponse>> futs(n_requests);
  std::vector<double> at_s(n_requests);
  WallTimer wall;
  for (std::size_t i = 0; i < n_requests; ++i) {
    const double at = double(i) / std::max(1.0, qps);
    while (wall.seconds() < at) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const auto q = w.queries.row_span(i % w.queries.size());
    at_s[i] = wall.seconds();
    futs[i] = server.submit(std::vector<float>(q.begin(), q.end()), k);
  }
  std::size_t ok = 0, degraded = 0, failed = 0;
  struct Obs {
    double at;
    double ms;
  };
  std::vector<Obs> obs;
  obs.reserve(n_requests);
  for (std::size_t i = 0; i < n_requests; ++i) {
    const auto r = futs[i].get();
    if (r.status == serve::QueryStatus::kOk) {
      ++ok;
      obs.push_back({at_s[i], r.total_ms});
    } else if (r.status == serve::QueryStatus::kDegraded) {
      ++degraded;
      obs.push_back({at_s[i], r.total_ms});
    } else {
      ++failed;
    }
  }
  const double run_s = wall.seconds();
  writer.join();
  server.stop();

  // Windowed tail latency: worst window p999 vs the median window. Windows
  // span the *submission* interval (completions can drag past it), so every
  // window holds ~n/kWindows requests.
  constexpr std::size_t kWindows = 8;
  const double win_s = std::max(at_s.back(), 1e-9) / double(kWindows);
  std::vector<std::vector<double>> windows(kWindows);
  for (const auto& o : obs) {
    const auto idx = std::min(kWindows - 1, std::size_t(o.at / win_s));
    windows[idx].push_back(o.ms);
  }
  const auto pctl = [](std::vector<double>& v, double p) {
    std::sort(v.begin(), v.end());
    const auto idx = std::min(
        v.size() - 1, std::size_t(std::ceil(p * double(v.size()))) - 1);
    return v[idx];
  };
  std::vector<double> p999s;
  for (auto& win : windows) {
    if (win.size() >= 20) p999s.push_back(pctl(win, 0.999));
  }
  ANNSIM_CHECK_MSG(p999s.size() >= 2, "too few latency samples per window; "
                                      "raise --requests or lower --qps");
  std::vector<double> sorted_p999s = p999s;
  std::sort(sorted_p999s.begin(), sorted_p999s.end());
  const double p999_med = sorted_p999s[sorted_p999s.size() / 2];
  const double p999_max = sorted_p999s.back();
  // Spike budget: 2x the median window plus a small floor — plus, when a
  // kill is injected, one failure-detection timeout: a batch in flight when
  // the worker goes silent unavoidably waits out the detection SLA before
  // failover, and that is configured behavior, not a stall regression. A
  // disk fault always fires mid write round, where the engine's ack wait is
  // floored at 1s (see apply_writes' round_timeout), so the budget uses the
  // write plane's actual SLA rather than --timeout-ms alone. What the gate
  // catches is anything *beyond* detection + failover leaking into the
  // tail (e.g. serving stalled behind a compaction or a WAL group commit).
  const double detect_ms =
      crash_at_lsn > 0 ? std::max(cfg.result_timeout_ms, 1000.0)
                       : cfg.result_timeout_ms;
  const double p999_budget =
      2.0 * p999_med + 2.0 + (any_kill ? detect_ms : 0.0);
  const bool p999_ok = p999_max <= p999_budget;

  // Drain the stream's leftovers: heal anything still dead (auto-heal runs
  // on batch boundaries, so a kill in the last batch can outlive the load),
  // then fold every delta into frozen segments.
  const auto heal_rep = engine.heal();
  const std::uint64_t compactions = engine.compact();

  // WAL replay/truncation totals: mid-run auto-heals (tallied by the server)
  // plus the final drain heal above.
  const auto serve_metrics = server.metrics();
  const std::size_t wal_replayed =
      serve_metrics.wal_replayed_records + heal_rep.wal_replayed_records;
  const std::size_t wal_truncated = serve_metrics.wal_truncated_tail_bytes +
                                    heal_rep.wal_truncated_tail_bytes;

  // Durability gate: after the kill (message or disk fault) and the heal's
  // checkpoint-restore + WAL replay, every *acked* insert must still be
  // live and no acked delete may resurface. Acked-but-lost is the one
  // failure a write-ahead log exists to rule out.
  std::uint64_t lost_acked_writes = 0;
  std::uint64_t resurrected_acked_deletes = 0;
  if (!cfg.wal_dir.empty()) {
    for (const GlobalId id : acked_ids) {
      if (!engine.contains(id)) ++lost_acked_writes;
    }
    if (deletes_acked) {
      for (const GlobalId id : del_ids) {
        if (engine.contains(id)) ++resurrected_acked_deletes;
      }
    }
  }

  core::SearchStats live_st;
  auto live_res = engine.search(w.queries, k, 0, &live_st);
  const double recall_live = data::mean_recall(live_res, gt, k);
  std::size_t resurrected = 0;
  for (const auto& row : live_res) {
    for (const auto& nb : row) {
      if (nb.id < GlobalId(n_build) && deleted[nb.id]) ++resurrected;
    }
  }

  auto offline_cfg = cfg;
  offline_cfg.fault = {};
  offline_cfg.result_timeout_ms = 0;
  offline_cfg.checkpoint_dir.clear();
  // The reference build must not attach to (and replay!) the live run's WAL.
  offline_cfg.wal_dir.clear();
  core::DistributedAnnEngine offline(&final_corpus, offline_cfg);
  offline.build();
  auto off_res = offline.search(w.queries, k);
  const double recall_offline = data::mean_recall(off_res, gt, k);
  // One-sided: the live engine must not trail a fresh offline build by more
  // than the tolerance. (It routinely *beats* it — many smaller frozen
  // segments per partition are searched more exhaustively than one big one.)
  const double recall_gap = recall_offline - recall_live;

  const bool write_ok = w_dropped == 0 && id_mismatches == 0;
  const bool recall_ok = recall_gap <= recall_tol;
  const bool resurrect_ok = resurrected == 0;
  const bool durable_ok =
      lost_acked_writes == 0 && resurrected_acked_deletes == 0;

  std::printf("reads: %zu ok, %zu degraded, %zu failed in %.3fs "
              "(offered %.0f q/s)\n", ok, degraded, failed, run_s, qps);
  std::printf("writes: %llu replica inserts, %llu replica erases, %llu "
              "dropped, peak delta fill %llu, %llu final compactions\n",
              static_cast<unsigned long long>(w_inserted),
              static_cast<unsigned long long>(w_erased),
              static_cast<unsigned long long>(w_dropped),
              static_cast<unsigned long long>(w_peak_fill),
              static_cast<unsigned long long>(compactions));
  std::printf("p999 by window (ms):");
  for (const double p : p999s) std::printf(" %.2f", p);
  std::printf("  median %.2f, max %.2f, budget %.2f -> %s\n", p999_med,
              p999_max, p999_budget, p999_ok ? "steady" : "SPIKE");
  std::printf("recall@%zu: live %.4f vs fresh offline %.4f (offline-live gap "
              "%+.4f, tol %.2f) -> %s\n",
              k, recall_live, recall_offline, recall_gap, recall_tol,
              recall_ok ? "converged" : "DIVERGED");
  std::printf("deleted ids resurfacing: %zu%s, workers revived at end: %zu\n",
              resurrected, resurrect_ok ? "" : " (RESURRECTED)",
              heal_rep.workers_revived);
  if (!cfg.wal_dir.empty()) {
    std::printf("durability: %zu acked inserts, %llu lost, %llu acked deletes "
                "resurrected, %zu wal records replayed, %zu wal tail bytes "
                "truncated -> %s\n",
                acked_ids.size(),
                static_cast<unsigned long long>(lost_acked_writes),
                static_cast<unsigned long long>(resurrected_acked_deletes),
                wal_replayed, wal_truncated,
                durable_ok ? "durable" : "LOST ACKED WRITES");
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    ANNSIM_CHECK_MSG(f != nullptr, "cannot open " << json_path);
    std::fprintf(
        f,
        "{\n"
        "  \"workload\": \"%s\",\n"
        "  \"n_build\": %zu,\n"
        "  \"n_stream\": %zu,\n"
        "  \"n_deletes\": %zu,\n"
        "  \"n_queries\": %zu,\n"
        "  \"k\": %zu,\n"
        "  \"workers\": %zu,\n"
        "  \"replication\": %zu,\n"
        "  \"write_ratio\": %.3f,\n"
        "  \"qps\": %.0f,\n"
        "  \"requests\": %zu,\n"
        "  \"delta_capacity\": %zu,\n"
        "  \"compact_at_fill\": %zu,\n"
        "  \"kill_worker\": %zu,\n"
        "  \"kill_after\": %llu,\n"
        "  \"restore_path\": \"%s\",\n"
        "  \"wal\": %s,\n"
        "  \"wal_group_commit\": %s,\n"
        "  \"crash_at_lsn\": %llu,\n"
        "  \"disk_fault\": \"%s\",\n"
        "  \"reads_ok\": %zu,\n"
        "  \"reads_degraded\": %zu,\n"
        "  \"reads_failed\": %zu,\n"
        "  \"inserted_replicas\": %llu,\n"
        "  \"erased_replicas\": %llu,\n"
        "  \"dropped_rows\": %llu,\n"
        "  \"peak_delta_fill\": %llu,\n"
        "  \"final_compactions\": %llu,\n"
        "  \"p999_window_ms\": [",
        recipe.c_str(), n_build, n_stream, n_delete, n_queries, k,
        cfg.n_workers, cfg.replication, write_ratio, qps, n_requests,
        cfg.segment_delta_capacity, compact_at, kill_worker,
        static_cast<unsigned long long>(kill_after),
        cfg.checkpoint_dir.empty() ? "peer-stream" : "checkpoint",
        cfg.wal_dir.empty() ? "false" : "true",
        cfg.wal_group_commit ? "true" : "false",
        static_cast<unsigned long long>(crash_at_lsn),
        crash_at_lsn > 0 ? disk_fault_name.c_str() : "none", ok,
        degraded, failed, static_cast<unsigned long long>(w_inserted),
        static_cast<unsigned long long>(w_erased),
        static_cast<unsigned long long>(w_dropped),
        static_cast<unsigned long long>(w_peak_fill),
        static_cast<unsigned long long>(compactions));
    for (std::size_t i = 0; i < p999s.size(); ++i) {
      std::fprintf(f, "%s%.3f", i == 0 ? "" : ", ", p999s[i]);
    }
    std::fprintf(
        f,
        "],\n"
        "  \"p999_median_ms\": %.3f,\n"
        "  \"p999_max_ms\": %.3f,\n"
        "  \"p999_budget_ms\": %.3f,\n"
        "  \"p999_steady\": %s,\n"
        "  \"recall_live\": %.4f,\n"
        "  \"recall_offline\": %.4f,\n"
        "  \"recall_gap\": %.4f,\n"
        "  \"recall_converged\": %s,\n"
        "  \"deleted_resurfaced\": %zu,\n"
        "  \"acked_inserts\": %zu,\n"
        "  \"lost_acked_writes\": %llu,\n"
        "  \"resurrected_acked_deletes\": %llu,\n"
        "  \"wal_replayed_records\": %zu,\n"
        "  \"wal_truncated_tail_bytes\": %zu\n"
        "}\n",
        p999_med, p999_max, p999_budget, p999_ok ? "true" : "false", recall_live,
        recall_offline, recall_gap, recall_ok ? "true" : "false", resurrected,
        acked_ids.size(), static_cast<unsigned long long>(lost_acked_writes),
        static_cast<unsigned long long>(resurrected_acked_deletes),
        wal_replayed, wal_truncated);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  int rc = 0;
  if (!write_ok || !p999_ok || !recall_ok || !resurrect_ok || !durable_ok) {
    std::fprintf(stderr,
                 "mutate-bench: gate failed (writes %s, p999 %s, recall %s, "
                 "tombstones %s, durability %s)\n",
                 write_ok ? "ok" : "DROPPED", p999_ok ? "ok" : "SPIKE",
                 recall_ok ? "ok" : "DIVERGED",
                 resurrect_ok ? "ok" : "RESURRECTED",
                 durable_ok ? "ok" : "LOST");
    rc = 1;
  }
  rc = check_exit(mpi_check, offline, "mutate-offline", rc);
  return check_exit(mpi_check, engine, "mutate", rc);
}

/// Overload benchmark on a synthetic workload (DESIGN.md §4.11). Measures
/// saturation capacity closed-loop, then drives an open-loop mixed-class
/// ramp at {0.5, 1, 1.5, 2}x capacity twice against the same engine: once
/// with overload control off (the collapse baseline) and once with
/// deadline-aware admission + brownout + circuit breaker armed. Three gates
/// make it CI-able:
///
///  * goodput holds: in-deadline completions/s at 2x capacity must stay
///    >= 70% of the best control-on stage (no congestion collapse),
///  * interactive survives: the interactive class's deadline-hit rate at 2x
///    must stay >= 95% (shedding lands on lower classes first), and
///  * answers stay useful: mean recall of served answers at 2x — including
///    browned-out ones — must stay above the --recall-floor.
int cmd_overload_bench(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string recipe = argv[0];
  const std::size_t n_base = arg_num(argv[1]);
  const std::size_t n_queries = arg_num(argv[2]);
  const std::size_t k = arg_num(argv[3]);

  core::EngineConfig cfg;
  cfg.n_workers = arg_num(opt(argc, argv, "--workers", "8").c_str());
  cfg.n_probe = arg_num(opt(argc, argv, "--nprobe", "4").c_str());
  const bool mpi_check = flag(argc, argv, "--mpi-check");
  if (mpi_check) {
    cfg.mpi_check = true;
    cfg.check_fatal = false;
  }

  const double deadline_ms =
      std::atof(opt(argc, argv, "--deadline-ms", "50").c_str());
  ANNSIM_CHECK_MSG(deadline_ms > 0, "--deadline-ms must be > 0");
  const std::size_t n_requests =
      arg_num(opt(argc, argv, "--requests", "1500").c_str());
  const double recall_floor =
      std::atof(opt(argc, argv, "--recall-floor", "0.5").c_str());
  const std::string json_path = opt(argc, argv, "--json", "");

  serve::ServerConfig base_sc;
  base_sc.max_batch = arg_num(opt(argc, argv, "--max-batch", "32").c_str());
  base_sc.max_delay_ms =
      std::atof(opt(argc, argv, "--max-delay-ms", "2").c_str());
  base_sc.queue_capacity =
      arg_num(opt(argc, argv, "--queue-cap", "256").c_str());

  auto w = data::make_by_name(recipe, n_base, n_queries, 42);
  std::printf("overload-bench: %zu x %zu-d, %zu queries, k=%zu, %zu workers, "
              "deadline %.1fms\n",
              w.base.size(), w.base.dim(), w.queries.size(), k, cfg.n_workers,
              deadline_ms);
  auto gt = data::brute_force_knn(w.base, w.queries, k, simd::Metric::kL2);

  core::DistributedAnnEngine engine(&w.base, cfg);
  engine.build();

  // --- capacity: closed-loop saturation throughput, no deadline. ---
  double capacity_qps = 0.0;
  {
    serve::QueryServer server(&engine, base_sc);
    serve::LoadGenConfig lg;
    lg.open_loop = false;
    // Enough in-flight clients to keep two full batches queued — fewer and
    // the probe measures small-batch throughput, understating capacity so
    // far that the "2x" ramp stages never actually saturate the server.
    lg.n_clients = 2 * base_sc.max_batch;
    lg.n_requests = std::max<std::size_t>(500, n_requests / 2);
    lg.k = k;
    const auto rep = serve::run_load(server, w.queries, lg);
    server.stop();
    capacity_qps =
        rep.wall_seconds > 0 ? double(rep.ok) / rep.wall_seconds : 0.0;
  }
  ANNSIM_CHECK_MSG(capacity_qps > 0, "capacity measurement produced 0 qps");
  std::printf("capacity: %.0f q/s (closed-loop saturation)\n", capacity_qps);

  static constexpr double kMults[] = {0.5, 1.0, 1.5, 2.0};
  constexpr std::size_t kInteractiveIdx =
      std::size_t(serve::PriorityClass::kInteractive);

  serve::LoadGenConfig lg;
  lg.open_loop = true;
  lg.qps = capacity_qps;
  lg.n_requests = n_requests;
  lg.k = k;
  lg.deadline_ms = deadline_ms;
  lg.class_mix = {0.5, 0.3, 0.2};

  auto goodput = [](const serve::LoadGenReport& r) {
    return r.wall_seconds > 0 ? double(r.ok) / r.wall_seconds : 0.0;
  };

  // --- control off: FIFO batching, no culling, no brownout, no breaker. ---
  std::vector<serve::RampStage> off_stages;
  {
    serve::QueryServer server(&engine, base_sc);
    off_stages = serve::run_ramp(server, w.queries, lg, kMults);
    server.stop();
    for (const auto& stage : off_stages) {
      const auto& ia = stage.report.by_class[kInteractiveIdx];
      std::printf("control off %.1fx: goodput %.0f q/s, interactive hit %.3f, "
                  "%zu expired, %zu rejected\n",
                  stage.multiplier, goodput(stage.report), ia.hit_rate,
                  stage.report.expired, stage.report.rejected);
    }
  }

  // --- control on: same ramp with the full overload stack armed, plus a
  // recall probe over every served answer. ---
  serve::ServerConfig on_sc = base_sc;
  on_sc.deadline_scheduling = true;
  on_sc.brownout_target_ms =
      std::atof(opt(argc, argv, "--brownout-target-ms",
                    std::to_string(deadline_ms / 4).c_str()).c_str());
  on_sc.brownout_floor =
      std::atof(opt(argc, argv, "--brownout-floor", "0.25").c_str());
  on_sc.breaker_threshold =
      std::atof(opt(argc, argv, "--breaker-threshold", "0.9").c_str());

  std::vector<double> served_recalls, browned_recalls;
  lg.on_response = [&](std::size_t i, const serve::QueryResponse& resp) {
    if (resp.status != serve::QueryStatus::kOk &&
        resp.status != serve::QueryStatus::kDegraded) {
      return;
    }
    const double r = data::recall_at_k(resp.neighbors,
                                       gt[i % w.queries.size()], k);
    served_recalls.push_back(r);
    if (resp.effort_factor < 1.0) browned_recalls.push_back(r);
  };

  std::vector<serve::RampStage> on_stages;
  serve::MetricsReport on_metrics;
  {
    serve::QueryServer server(&engine, on_sc);
    on_stages = serve::run_ramp(server, w.queries, lg, kMults);
    on_metrics = server.metrics();
    server.stop();
    for (const auto& stage : on_stages) {
      const auto& r = stage.report;
      const auto& ia = r.by_class[kInteractiveIdx];
      std::printf("control on  %.1fx: goodput %.0f q/s, interactive hit %.3f "
                  "p999 %.2fms, %zu shed, %zu expired, min effort %.2f\n",
                  stage.multiplier, goodput(r), ia.hit_rate, ia.p999_ms,
                  r.shed, r.expired, r.min_effort_factor);
    }
  }
  std::printf("%s\n", serve::to_string(on_metrics).c_str());

  auto mean_of = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double s = 0.0;
    for (double x : v) s += x;
    return s / double(v.size());
  };
  const double recall_served = mean_of(served_recalls);
  const double recall_browned = mean_of(browned_recalls);
  std::printf("served recall@%zu: %.4f overall, %.4f over %zu browned-out "
              "answers (min effort %.2f)\n",
              k, recall_served, recall_browned, browned_recalls.size(),
              on_metrics.brownout_min_factor);

  double peak_goodput = 0.0;
  for (const auto& stage : on_stages) {
    peak_goodput = std::max(peak_goodput, goodput(stage.report));
  }
  const auto& at2x = on_stages.back().report;
  const auto& at2x_ia = at2x.by_class[kInteractiveIdx];
  const double goodput_2x = goodput(at2x);
  const double goodput_ratio = peak_goodput > 0 ? goodput_2x / peak_goodput : 0;

  const bool goodput_ok = goodput_ratio >= 0.70;
  const bool hit_ok = at2x_ia.hit_rate >= 0.95;
  // Served answers at any load must have completed inside the deadline; a
  // p999 past it means late answers leaked through as "ok".
  const bool p999_ok = at2x_ia.p999_ms <= deadline_ms * 1.05;
  const bool recall_ok = served_recalls.empty()
                             ? false
                             : recall_served >= recall_floor &&
                               (browned_recalls.empty() ||
                                recall_browned >= recall_floor);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    ANNSIM_CHECK_MSG(f != nullptr, "cannot open " << json_path);
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"n_base\": %zu,\n"
                 "  \"n_queries\": %zu,\n"
                 "  \"k\": %zu,\n"
                 "  \"workers\": %zu,\n"
                 "  \"deadline_ms\": %.1f,\n"
                 "  \"capacity_qps\": %.1f,\n"
                 "  \"stages\": [\n",
                 recipe.c_str(), w.base.size(), w.queries.size(), k,
                 cfg.n_workers, deadline_ms, capacity_qps);
    for (std::size_t s = 0; s < on_stages.size(); ++s) {
      const auto& off = off_stages[s].report;
      const auto& on = on_stages[s].report;
      const auto& off_ia = off.by_class[kInteractiveIdx];
      const auto& on_ia = on.by_class[kInteractiveIdx];
      std::fprintf(
          f,
          "    {\"multiplier\": %.1f, \"offered_qps\": %.1f,\n"
          "     \"off\": {\"goodput_qps\": %.1f, \"interactive_hit_rate\": "
          "%.4f, \"interactive_p999_ms\": %.3f, \"expired\": %zu, "
          "\"rejected\": %zu},\n"
          "     \"on\": {\"goodput_qps\": %.1f, \"interactive_hit_rate\": "
          "%.4f, \"interactive_p999_ms\": %.3f, \"shed\": %zu, \"expired\": "
          "%zu, \"min_effort\": %.2f}}%s\n",
          on_stages[s].multiplier, on.offered_qps, goodput(off),
          off_ia.hit_rate, off_ia.p999_ms, off.expired, off.rejected,
          goodput(on), on_ia.hit_rate, on_ia.p999_ms, on.shed, on.expired,
          on.min_effort_factor, s + 1 < on_stages.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n"
        "  \"peak_goodput_qps\": %.1f,\n"
        "  \"goodput_at_2x_qps\": %.1f,\n"
        "  \"goodput_ratio_at_2x\": %.4f,\n"
        "  \"interactive_hit_rate_at_2x\": %.4f,\n"
        "  \"interactive_p999_at_2x_ms\": %.3f,\n"
        "  \"recall_served\": %.4f,\n"
        "  \"recall_browned_out\": %.4f,\n"
        "  \"browned_out_answers\": %zu,\n"
        "  \"brownout_min_factor\": %.2f,\n"
        "  \"breaker_trips\": %zu,\n"
        "  \"shed_total\": %zu,\n"
        "  \"goodput_holds\": %s,\n"
        "  \"interactive_survives\": %s,\n"
        "  \"p999_bounded\": %s,\n"
        "  \"recall_floor_holds\": %s\n"
        "}\n",
        peak_goodput, goodput_2x, goodput_ratio, at2x_ia.hit_rate,
        at2x_ia.p999_ms, recall_served, recall_browned, browned_recalls.size(),
        on_metrics.brownout_min_factor, on_metrics.breaker_trips,
        on_metrics.shed, goodput_ok ? "true" : "false",
        hit_ok ? "true" : "false", p999_ok ? "true" : "false",
        recall_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  int rc = 0;
  if (!goodput_ok || !hit_ok || !p999_ok || !recall_ok) {
    std::fprintf(stderr,
                 "overload-bench: gate failed (goodput %s %.0f%%, interactive "
                 "%s %.1f%%, p999 %s %.2fms, recall %s %.3f)\n",
                 goodput_ok ? "ok" : "COLLAPSED", goodput_ratio * 100.0,
                 hit_ok ? "ok" : "STARVED", at2x_ia.hit_rate * 100.0,
                 p999_ok ? "ok" : "UNBOUNDED", at2x_ia.p999_ms,
                 recall_ok ? "ok" : "BELOW FLOOR", recall_served);
    rc = 1;
  }
  return check_exit(mpi_check, engine, "overload", rc);
}

/// Systematic schedule exploration over the engine scenarios (annsim::explore).
/// Every failing schedule prints its replay token; `--replay TOKEN` re-executes
/// that exact schedule and verifies the event digest byte for byte.
int cmd_explore_bench(int argc, char** argv) {
  using namespace annsim::explore;

  const std::string mix_arg = opt(argc, argv, "--mix", "all");
  const std::string strat = opt(argc, argv, "--strategy", "random");
  const std::size_t seeds = arg_num(opt(argc, argv, "--seeds", "20").c_str());
  const std::uint64_t seed0 =
      arg_num(opt(argc, argv, "--seed", "0").c_str());
  const int pct_depth =
      int(arg_num(opt(argc, argv, "--pct-depth", "3").c_str()));
  const std::size_t max_schedules =
      arg_num(opt(argc, argv, "--max-schedules", "20000").c_str());
  const std::string replay_token = opt(argc, argv, "--replay", "");

  ScenarioConfig cfg;
  cfg.workers = arg_num(opt(argc, argv, "--workers", "2").c_str());
  cfg.replication = arg_num(opt(argc, argv, "--replication", "2").c_str());
  cfg.base_rows = arg_num(opt(argc, argv, "--rows", "32").c_str());
  cfg.write_rows = arg_num(opt(argc, argv, "--write-rows", "2").c_str());
  cfg.arm_faults = !flag(argc, argv, "--no-faults");
  cfg.mpi_check = true;  // --mpi-check accepted for symmetry; always armed
  const std::string scratch_base =
      opt(argc, argv, "--scratch", "/tmp/annsim_explore_bench");

  std::vector<Mix> mixes;
  if (mix_arg == "all") {
    mixes = {Mix::kWrite, Mix::kQuery, Mix::kCompact, Mix::kHeal, Mix::kMixed};
  } else {
    const auto mix = parse_mix(mix_arg);
    if (!mix.has_value()) usage();
    mixes = {*mix};
  }

  auto ctrl = std::make_shared<mpi::ScheduleController>();
  std::size_t runs = 0;
  std::size_t failures = 0;

  const auto report = [&](Mix mix, char strategy_char, std::uint64_t seed,
                          int depth, const ScenarioResult& res) {
    ++runs;
    const std::string token =
        encode_replay_token(strategy_char, seed, depth, res.outcome.trace);
    if (res.ok()) return;
    ++failures;
    std::fprintf(stderr,
                 "FAIL mix=%s token=%s\n  %s\n  replay: annsim explore-bench "
                 "--mix %s%s --replay %s\n",
                 mix_name(mix), token.c_str(), res.outcome.error.c_str(),
                 mix_name(mix), cfg.arm_faults ? "" : " --no-faults",
                 token.c_str());
  };

  for (const Mix mix : mixes) {
    auto mix_cfg = cfg;
    mix_cfg.mix = mix;
    mix_cfg.scratch_dir = scratch_base + "_" + mix_name(mix) + "_" +
                          std::to_string(::getpid());

    if (!replay_token.empty()) {
      const auto decoded = decode_replay_token(replay_token);
      if (!decoded.has_value()) {
        std::fprintf(stderr, "explore-bench: malformed replay token\n");
        return 2;
      }
      const auto res = run_scenario(
          mix_cfg, ctrl, std::make_shared<ForcedStrategy>(decoded->choices));
      report(mix, 'f', decoded->seed, decoded->depth, res);
      const bool digest_ok = res.outcome.trace.digest == decoded->digest;
      std::printf("replay mix=%s schedules=1 digest=%s\n", mix_name(mix),
                  digest_ok ? "match" : "MISMATCH");
      if (!digest_ok) ++failures;
      continue;
    }

    if (strat == "dfs") {
      // Exhaustive enumeration only terminates on the pure delivery-order
      // space, so the injector's timeout choice points stay disarmed here.
      mix_cfg.arm_faults = false;
      DfsDriver dfs(max_schedules);
      do {
        report(mix, 'd', 0, 0, run_scenario(mix_cfg, ctrl, dfs.strategy()));
      } while (dfs.advance());
      std::printf("dfs mix=%s schedules=%zu%s\n", mix_name(mix),
                  dfs.schedules_run(),
                  dfs.truncated() ? " (TRUNCATED at cap)" : " (exhaustive)");
      if (dfs.truncated()) ++failures;
    } else if (strat == "pct") {
      for (std::uint64_t s = seed0; s < seed0 + seeds; ++s) {
        report(mix, 'p', s, pct_depth,
               run_scenario(mix_cfg, ctrl,
                            std::make_shared<PctStrategy>(s, pct_depth)));
      }
    } else if (strat == "random") {
      for (std::uint64_t s = seed0; s < seed0 + seeds; ++s) {
        report(mix, 'r', s, 0,
               run_scenario(mix_cfg, ctrl, std::make_shared<RandomStrategy>(s)));
      }
    } else {
      usage();
    }
  }

  std::printf("explore-bench: %zu schedule(s), %zu failure(s)\n", runs,
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "gt") return cmd_gt(argc - 2, argv + 2);
    if (cmd == "build") return cmd_build(argc - 2, argv + 2);
    if (cmd == "search") return cmd_search(argc - 2, argv + 2);
    if (cmd == "eval") return cmd_eval(argc - 2, argv + 2);
    if (cmd == "info") return cmd_info(argc - 2, argv + 2);
    if (cmd == "serve-bench") return cmd_serve_bench(argc - 2, argv + 2);
    if (cmd == "chaos-bench") return cmd_chaos_bench(argc - 2, argv + 2);
    if (cmd == "mutate-bench") return cmd_mutate_bench(argc - 2, argv + 2);
    if (cmd == "overload-bench") return cmd_overload_bench(argc - 2, argv + 2);
    if (cmd == "explore-bench") return cmd_explore_bench(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
