#!/usr/bin/env python3
"""Repo-local lint rules that clang-tidy/cppcheck cannot express.

Run from anywhere: paths are resolved relative to the repository root
(the parent of this script's directory). Exit status is the number of
files with findings (0 = clean), so ctest and CI can gate on it.

Rules
-----
naked-tag-literal
    p2p calls in the engine/serving/tools layers (src/core, src/serve,
    tools) must name their tag (kTagQuery, ...), never pass an integer
    literal. A literal tag silently collides with the protocol's named
    tags and defeats annsim::check's reserved-tag rule. The MPI layer
    itself and its tests are exempt: they define and exercise raw tags.

sleep-in-test
    tests/ must not use std::this_thread::sleep_for — timing-based tests
    flake under sanitizers and loaded CI runners. Exempt: suites whose
    subject *is* time (tests/des/, tests/check/ deadlock/backoff tests,
    test_mpi_timeout, test_timer_log, test_server_degraded's detection
    deadlines).

missing-include-guard
    every header under include/ and src/ must open with #pragma once
    (or a classic include guard) before any non-comment content.

sleep-in-serve
    the serving plane (src/serve, include/annsim/serve) must not call
    std::this_thread::sleep_for directly — a raw sleep on the scheduler
    or a retry path stalls every queued request behind it. Poll with
    common/backoff.hpp (spin -> yield -> bounded sleep) or block on a
    condition variable with a deadline instead. sleep_until in the load
    generator is exempt: paced open-loop arrival times are the subject.

raw-buffer-in-quant
    the quantized tier (src/quant, include/annsim/quant) must not
    allocate raw buffers (new[], malloc, aligned_alloc): code slabs and
    float caches go through common/aligned_buffer.hpp, which owns the
    alignment the fused uint8 kernels assume and frees with the matching
    deallocator. A raw new[] here either loses the 64-byte alignment or
    leaks it into a unique_ptr with the wrong deleter.

raw-sleep-in-src
    no file under src/ or include/annsim/ may call
    std::this_thread::sleep_for directly. Every wall-clock wait goes
    through common/backoff.hpp (Backoff::pause or sleep_approx): the
    schedule explorer (annsim::explore) can only make waits deterministic
    when they are funneled through one auditable choke point, and a raw
    sleep in a polling loop is invisible to it. backoff.hpp itself is the
    single sanctioned caller.

raw-write-in-recovery
    the recovery plane (src/recovery, include/annsim/recovery) must not
    open files for writing with std::ofstream or fopen: durability code
    that skips DurableFile silently loses the fsync-before-ack and
    atomic-rename guarantees the WAL and checkpoint store are built on.
    All writes go through recovery/durable_file.hpp; durable_file.cpp
    itself (the one wrapper over the raw syscalls) is exempt. Reads
    (std::ifstream) are fine — torn data is detected by CRC, not
    prevented by the reader.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# --- rule: naked tag literals at engine/serve/tool call sites -------------
TAG_CALL_DIRS = ["src/core", "src/serve", "tools"]
# .send(dest, 3, ...) / .irecv(src, -1) / .iprobe(src, 7) ... with a bare
# integer in tag position. Named constants (kTagQuery) do not match.
TAG_CALL_RE = re.compile(
    r"\.\s*(?:send|isend|send_reserved|isend_reserved|recv|irecv|recv_for|"
    r"iprobe)\s*\(\s*(?:[^,()]|\([^()]*\))+,\s*(-?\d+)\s*[,)]"
)

# --- rule: sleep_for in tests ---------------------------------------------
SLEEP_RE = re.compile(r"\bsleep_for\s*\(")
SLEEP_ALLOW = [
    "tests/des/",                        # discrete-event timing suites
    "tests/check/",                      # deadlock detection needs real delays
    "tests/mpi/test_mpi_timeout.cpp",    # subject is recv_for deadlines
    "tests/common/test_timer_log.cpp",   # subject is the wall timer
    "tests/serve/test_server_degraded.cpp",  # failure-detection deadlines
    "tests/serve/test_server_overload.cpp",  # breaker open-period deadlines
]

# --- rule: header guards ---------------------------------------------------
HEADER_DIRS = ["include", "src"]
GUARD_RE = re.compile(r"^\s*(#pragma\s+once|#ifndef\s+\w+)\s*$", re.M)

# --- rule: raw sleeps in the serving plane --------------------------------
SERVE_DIRS = ["src/serve", "include/annsim/serve"]

# --- rule: raw buffer allocation in the quantized tier --------------------
QUANT_DIRS = ["src/quant", "include/annsim/quant"]
RAW_BUFFER_RE = re.compile(
    r"\bnew\s+[\w:]+(?:\s*<[^<>]*>)?\s*\[|\b(?:malloc|calloc|aligned_alloc|"
    r"posix_memalign)\s*\("
)

# --- rule: raw sleeps anywhere under src/ or include/annsim ---------------
SRC_SLEEP_DIRS = ["src", "include/annsim"]
SRC_SLEEP_ALLOW = ["include/annsim/common/backoff.hpp"]

# --- rule: raw file writes in the recovery plane --------------------------
RECOVERY_DIRS = ["src/recovery", "include/annsim/recovery"]
RECOVERY_WRITE_ALLOW = ["src/recovery/durable_file.cpp"]
RAW_WRITE_RE = re.compile(r"\bstd::ofstream\b|\bofstream\b|\bfopen\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks
    so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif ch in "\"'":
            q = ch
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def check_naked_tags(findings: list[str]) -> None:
    for d in TAG_CALL_DIRS:
        for path in sorted((REPO / d).rglob("*.cpp")):
            rel = path.relative_to(REPO)
            text = strip_comments_and_strings(path.read_text())
            for m in TAG_CALL_RE.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [naked-tag-literal] "
                    f"tag {m.group(1)} passed as a literal; use a named "
                    f"kTag* constant from core/protocol.hpp"
                )


def check_test_sleeps(findings: list[str]) -> None:
    for path in sorted((REPO / "tests").rglob("*.cpp")):
        rel = str(path.relative_to(REPO))
        if any(rel.startswith(a) or rel == a for a in SLEEP_ALLOW):
            continue
        text = strip_comments_and_strings(path.read_text())
        for m in SLEEP_RE.finditer(text):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: [sleep-in-test] "
                f"timing-based sleep in a test; synchronize with a "
                f"handshake message or condition instead"
            )


def check_header_guards(findings: list[str]) -> None:
    for d in HEADER_DIRS:
        for path in sorted((REPO / d).rglob("*.hpp")):
            rel = path.relative_to(REPO)
            text = strip_comments_and_strings(path.read_text())
            if not GUARD_RE.search(text):
                findings.append(
                    f"{rel}:1: [missing-include-guard] header lacks "
                    f"#pragma once (or an include guard)"
                )


def check_serve_sleeps(findings: list[str]) -> None:
    for d in SERVE_DIRS:
        for path in sorted((REPO / d).rglob("*.[ch]pp")):
            rel = path.relative_to(REPO)
            text = strip_comments_and_strings(path.read_text())
            for m in SLEEP_RE.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [sleep-in-serve] "
                    f"raw sleep_for on the serving plane stalls queued "
                    f"requests; use common/backoff.hpp or a deadline wait"
                )


def check_quant_raw_buffers(findings: list[str]) -> None:
    for d in QUANT_DIRS:
        for path in sorted((REPO / d).rglob("*.[ch]pp")):
            rel = path.relative_to(REPO)
            text = strip_comments_and_strings(path.read_text())
            for m in RAW_BUFFER_RE.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [raw-buffer-in-quant] "
                    f"raw buffer allocation in the quantized tier; use "
                    f"common/aligned_buffer.hpp for code slabs and caches"
                )


def check_src_sleeps(findings: list[str]) -> None:
    for d in SRC_SLEEP_DIRS:
        for path in sorted((REPO / d).rglob("*.[ch]pp")):
            rel = str(path.relative_to(REPO))
            if rel in SRC_SLEEP_ALLOW:
                continue
            text = strip_comments_and_strings(path.read_text())
            for m in SLEEP_RE.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [raw-sleep-in-src] "
                    f"raw sleep_for is invisible to the schedule explorer; "
                    f"wait through common/backoff.hpp (sleep_approx or "
                    f"Backoff::pause)"
                )


def check_recovery_raw_writes(findings: list[str]) -> None:
    for d in RECOVERY_DIRS:
        for path in sorted((REPO / d).rglob("*.[ch]pp")):
            rel = str(path.relative_to(REPO))
            if rel in RECOVERY_WRITE_ALLOW:
                continue
            text = strip_comments_and_strings(path.read_text())
            for m in RAW_WRITE_RE.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: "
                    f"[raw-write-in-recovery] raw file write in the recovery "
                    f"plane skips fsync/atomic-rename; go through "
                    f"recovery/durable_file.hpp"
                )


def main() -> int:
    findings: list[str] = []
    check_naked_tags(findings)
    check_test_sleeps(findings)
    check_header_guards(findings)
    check_serve_sleeps(findings)
    check_quant_raw_buffers(findings)
    check_src_sleeps(findings)
    check_recovery_raw_writes(findings)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_repo: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_repo: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
